package vetring

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the router's observability surface.
//
// Counter contract (tested): every successfully parsed vet request —
// batch items included — increments Requests and then exactly one of
//
//	Replicated — answered by a ring peer
//	Degraded   — every replica unreachable; answered by local fallback
//	Sheds      — rejected 429 (peers saturated and fallback full)
//	Failed     — internal error (fallback analysis failed)
//
// so Replicated + Degraded + Sheds + Failed == Requests at every
// quiescent instant. Retries and failovers are attempt-level counters
// and do not participate in the request-level identity.
type Metrics struct {
	Requests   atomic.Uint64
	Replicated atomic.Uint64
	Degraded   atomic.Uint64
	Sheds      atomic.Uint64
	Failed     atomic.Uint64

	BadRequests atomic.Uint64

	// Attempt-level counters.
	Retries   atomic.Uint64 // re-sends after a retryable peer failure
	Failovers atomic.Uint64 // moves to the next replica
	Peer429s  atomic.Uint64 // peer shed; failover without breaker damage
	PeerErrs  atomic.Uint64 // transport errors + 5xx from peers

	// Probe counters.
	ProbeOK   atomic.Uint64
	ProbeFail atomic.Uint64

	// FallbackAnalyses counts local defense.VetTier runs (the degraded
	// path's work; a subset equal to Degraded+Failed).
	FallbackAnalyses atomic.Uint64
}

// PeerStats is one peer's slice of the /stats snapshot.
type PeerStats struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"`
	Opens   uint64 `json:"breaker_opens"`
	Served  uint64 `json:"served"`
	Errors  uint64 `json:"errors"`
}

// Stats is the router's GET /stats JSON snapshot. Service is
// "vetrouter", the discriminator load generators key on to pick the
// right accounting invariant.
type Stats struct {
	Service    string `json:"service"`
	Requests   uint64 `json:"requests"`
	Replicated uint64 `json:"replicated"`
	Degraded   uint64 `json:"degraded"`
	Sheds      uint64 `json:"sheds"`
	Failed     uint64 `json:"failed"`

	BadRequests uint64 `json:"bad_requests"`
	Retries     uint64 `json:"retries"`
	Failovers   uint64 `json:"failovers"`
	Peer429s    uint64 `json:"peer_429s"`
	PeerErrors  uint64 `json:"peer_errors"`
	ProbeOK     uint64 `json:"probe_ok"`
	ProbeFail   uint64 `json:"probe_fail"`

	FallbackAnalyses uint64 `json:"fallback_analyses"`

	Peers []PeerStats `json:"peers"`
}

// WriteProm renders the router metrics in Prometheus text exposition
// format.
func (r *Router) WriteProm(w io.Writer) {
	m := &r.metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("vetrouter_requests_total", "Parsed vet requests, batch items included.", m.Requests.Load())
	counter("vetrouter_replicated_total", "Requests answered by a ring peer.", m.Replicated.Load())
	counter("vetrouter_degraded_total", "Requests answered by local fallback.", m.Degraded.Load())
	counter("vetrouter_shed_total", "Requests rejected 429.", m.Sheds.Load())
	counter("vetrouter_failed_total", "Requests failed internally.", m.Failed.Load())
	counter("vetrouter_bad_requests_total", "Requests rejected before classification.", m.BadRequests.Load())
	counter("vetrouter_retries_total", "Attempt re-sends after retryable failures.", m.Retries.Load())
	counter("vetrouter_failovers_total", "Moves to the next replica.", m.Failovers.Load())
	counter("vetrouter_peer_429_total", "Peer sheds observed.", m.Peer429s.Load())
	counter("vetrouter_peer_errors_total", "Peer transport errors and 5xx.", m.PeerErrs.Load())
	counter("vetrouter_probe_ok_total", "Successful health probes.", m.ProbeOK.Load())
	counter("vetrouter_probe_fail_total", "Failed health probes.", m.ProbeFail.Load())
	counter("vetrouter_fallback_analyses_total", "Local fallback analyses.", m.FallbackAnalyses.Load())
	fmt.Fprintf(w, "# HELP vetrouter_peer_served_total Requests served per peer.\n# TYPE vetrouter_peer_served_total counter\n")
	for _, p := range r.peerStats() {
		fmt.Fprintf(w, "vetrouter_peer_served_total{peer=%q} %d\n", p.Name, p.Served)
	}
	fmt.Fprintf(w, "# HELP vetrouter_peer_breaker_open Peer breaker state (1 = not closed).\n# TYPE vetrouter_peer_breaker_open gauge\n")
	for _, p := range r.peerStats() {
		open := 0
		if p.Breaker != "closed" {
			open = 1
		}
		fmt.Fprintf(w, "vetrouter_peer_breaker_open{peer=%q,state=%q} %d\n", p.Name, p.Breaker, open)
	}
}

// Snapshot assembles the current Stats.
func (r *Router) Snapshot() Stats {
	m := &r.metrics
	return Stats{
		Service:          "vetrouter",
		Requests:         m.Requests.Load(),
		Replicated:       m.Replicated.Load(),
		Degraded:         m.Degraded.Load(),
		Sheds:            m.Sheds.Load(),
		Failed:           m.Failed.Load(),
		BadRequests:      m.BadRequests.Load(),
		Retries:          m.Retries.Load(),
		Failovers:        m.Failovers.Load(),
		Peer429s:         m.Peer429s.Load(),
		PeerErrors:       m.PeerErrs.Load(),
		ProbeOK:          m.ProbeOK.Load(),
		ProbeFail:        m.ProbeFail.Load(),
		FallbackAnalyses: m.FallbackAnalyses.Load(),
		Peers:            r.peerStats(),
	}
}
