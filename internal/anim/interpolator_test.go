package anim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func allInterpolators() []Interpolator {
	return []Interpolator{
		Linear{},
		Accelerate{},
		Decelerate{},
		FastOutSlowIn(),
		Reverse{Inner: Accelerate{}},
	}
}

func TestInterpolatorEndpoints(t *testing.T) {
	for _, ip := range allInterpolators() {
		lo, hi := ip.Interpolate(0), ip.Interpolate(1)
		if _, isRev := ip.(Reverse); isRev {
			if lo != 1 || hi != 0 {
				t.Errorf("%s endpoints = (%v,%v), want (1,0)", ip.Name(), lo, hi)
			}
			continue
		}
		if lo != 0 {
			t.Errorf("%s.Interpolate(0) = %v, want 0", ip.Name(), lo)
		}
		if math.Abs(hi-1) > 1e-9 {
			t.Errorf("%s.Interpolate(1) = %v, want 1", ip.Name(), hi)
		}
	}
}

func TestInterpolatorRangeAndMonotone(t *testing.T) {
	for _, ip := range []Interpolator{Linear{}, Accelerate{}, Decelerate{}, FastOutSlowIn()} {
		prev := -1.0
		for i := 0; i <= 1000; i++ {
			x := float64(i) / 1000
			y := ip.Interpolate(x)
			if y < 0 || y > 1 {
				t.Fatalf("%s.Interpolate(%v) = %v out of [0,1]", ip.Name(), x, y)
			}
			if y < prev-1e-9 {
				t.Fatalf("%s not monotone at x=%v: %v < %v", ip.Name(), x, y, prev)
			}
			prev = y
		}
	}
}

func TestInterpolatorClampsOutOfRange(t *testing.T) {
	for _, ip := range allInterpolators() {
		if got := ip.Interpolate(-0.5); got != ip.Interpolate(0) {
			t.Errorf("%s.Interpolate(-0.5) = %v, want clamp to f(0)", ip.Name(), got)
		}
		if got := ip.Interpolate(1.5); got != ip.Interpolate(1) {
			t.Errorf("%s.Interpolate(1.5) = %v, want clamp to f(1)", ip.Name(), got)
		}
	}
}

func TestAccelerateIsSquare(t *testing.T) {
	ip := Accelerate{}
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if got, want := ip.Interpolate(x), x*x; math.Abs(got-want) > 1e-12 {
			t.Errorf("Accelerate(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestDecelerateIsInvertedParabola(t *testing.T) {
	ip := Decelerate{}
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		want := 1 - (1-x)*(1-x)
		if got := ip.Interpolate(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Decelerate(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestFastOutSlowInPaperAnchors checks the two quantitative claims the
// paper makes about Fig. 2: less than 50% completeness in the first 100 ms
// of the 360 ms animation, and ~0.17% at the first 10 ms frame.
func TestFastOutSlowInPaperAnchors(t *testing.T) {
	ip := FastOutSlowIn()
	at100 := ip.Interpolate(100.0 / 360.0)
	if at100 >= 0.5 {
		t.Fatalf("completeness at 100ms = %.3f, paper says < 0.5", at100)
	}
	at10 := ip.Interpolate(10.0 / 360.0)
	if at10 > 0.01 {
		t.Fatalf("completeness at first 10ms frame = %.5f, paper says ≈0.0017", at10)
	}
	if at10 <= 0 {
		t.Fatalf("completeness at 10ms = %v, want > 0", at10)
	}
}

// TestNexus6PFirstFrameInvisible reproduces the paper's worked example: a
// 72-pixel notification view renders 0 pixels on the first 10 ms frame.
func TestNexus6PFirstFrameInvisible(t *testing.T) {
	ip := FastOutSlowIn()
	completeness := ip.Interpolate(10.0 / 360.0)
	if px := VisiblePixels(72, completeness); px != 0 {
		t.Fatalf("first frame renders %d px of 72, paper says 0", px)
	}
}

func TestVisiblePixels(t *testing.T) {
	tests := []struct {
		h    int
		c    float64
		want int
	}{
		{72, 0, 0},
		{72, 1, 72},
		{72, 0.5, 36},
		{72, 0.0017, 0},
		{72, 0.999, 71},
		{0, 1, 0},
		{-5, 1, 0},
		{72, 2.0, 72}, // clamped
		{72, -1.0, 0}, // clamped
		{100, 0.499, 49},
	}
	for _, tt := range tests {
		if got := VisiblePixels(tt.h, tt.c); got != tt.want {
			t.Errorf("VisiblePixels(%d, %v) = %d, want %d", tt.h, tt.c, got, tt.want)
		}
	}
}

func TestNewCubicBezierValidation(t *testing.T) {
	if _, err := NewCubicBezier(-0.1, 0, 0.5, 1, "bad"); err == nil {
		t.Fatal("control x < 0 accepted")
	}
	if _, err := NewCubicBezier(0.4, 0, 1.2, 1, "bad"); err == nil {
		t.Fatal("control x > 1 accepted")
	}
	if _, err := NewCubicBezier(0.4, -2, 0.2, 3, "wild-y"); err != nil {
		t.Fatalf("y outside [0,1] must be allowed (overshoot curves): %v", err)
	}
}

func TestCubicBezierSolverRoundTrip(t *testing.T) {
	// For the identity-ish curve with control points on the diagonal the
	// Bézier reduces to y = x.
	bz, err := NewCubicBezier(1.0/3, 1.0/3, 2.0/3, 2.0/3, "diag")
	if err != nil {
		t.Fatalf("NewCubicBezier: %v", err)
	}
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		if got := bz.Interpolate(x); math.Abs(got-x) > 1e-6 {
			t.Fatalf("diagonal bezier(%v) = %v, want %v", x, got, x)
		}
	}
}

func TestBezierNames(t *testing.T) {
	if got := FastOutSlowIn().Name(); got != "FastOutSlowInInterpolator" {
		t.Fatalf("Name = %q", got)
	}
	bz, err := NewCubicBezier(0.1, 0.2, 0.3, 0.4, "")
	if err != nil {
		t.Fatalf("NewCubicBezier: %v", err)
	}
	if got := bz.Name(); got != "CubicBezier(0.10,0.20,0.30,0.40)" {
		t.Fatalf("unlabeled Name = %q", got)
	}
}

func TestReverseInterpolator(t *testing.T) {
	r := Reverse{Inner: Linear{}}
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		if got := r.Interpolate(x); math.Abs(got-(1-x)) > 1e-12 {
			t.Errorf("Reverse(Linear)(%v) = %v, want %v", x, got, 1-x)
		}
	}
}

func TestSampleCurve(t *testing.T) {
	pts := Sample(Linear{}, 360*time.Millisecond, 36)
	if len(pts) != 37 {
		t.Fatalf("len = %d, want 37", len(pts))
	}
	if pts[0].At != 0 || pts[0].Completeness != 0 {
		t.Fatalf("first point = %+v, want origin", pts[0])
	}
	last := pts[len(pts)-1]
	if last.At != 360*time.Millisecond || math.Abs(last.Completeness-1) > 1e-9 {
		t.Fatalf("last point = %+v, want (360ms, 1)", last)
	}
	if pts := Sample(Linear{}, time.Second, 0); len(pts) != 2 {
		t.Fatalf("Sample with n=0 gave %d points, want clamp to 2", len(pts))
	}
}

// TestFigure4Crossover checks the structural relationship the toast attack
// relies on: the enter curve (Decelerate) is always at or above the exit
// curve (Accelerate), so a new toast is always more visible than the
// departing one at equal animation age.
func TestFigure4Crossover(t *testing.T) {
	enter, exit := Decelerate{}, Accelerate{}
	for i := 0; i <= 500; i++ {
		x := float64(i) / 500
		if enter.Interpolate(x) < exit.Interpolate(x)-1e-12 {
			t.Fatalf("enter < exit at x=%v", x)
		}
	}
	// Exit is slow early: after 20% of the fade only 4% has faded.
	if got := exit.Interpolate(0.2); got > 0.05 {
		t.Fatalf("exit at 20%% time = %v, want ≤ 0.04-ish", got)
	}
}

// Property: all interpolators stay within [0,1] for arbitrary inputs.
func TestPropertyInterpolatorBounded(t *testing.T) {
	ips := allInterpolators()
	prop := func(raw int16) bool {
		x := float64(raw) / 1000
		for _, ip := range ips {
			y := ip.Interpolate(x)
			if y < 0 || y > 1 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FastOutSlowIn solver inverts x(t) accurately: interpolating the
// x-coordinate of any t recovers the y-coordinate of that t.
func TestPropertyBezierSolverAccuracy(t *testing.T) {
	bz := FastOutSlowIn()
	prop := func(raw uint16) bool {
		tt := float64(raw) / 65535
		x := bezierCoord(tt, bz.X1, bz.X2)
		wantY := bezierCoord(tt, bz.Y1, bz.Y2)
		return math.Abs(bz.Interpolate(x)-wantY) < 1e-5
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
