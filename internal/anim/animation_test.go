package anim

import (
	"math"
	"testing"
	"time"

	"repro/internal/simclock"
)

func mustAnim(t *testing.T, c *simclock.Clock, cfg Config) *Animation {
	t.Helper()
	a, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	c := simclock.New()
	if _, err := New(nil, Config{Duration: time.Second}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(c, Config{Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := New(c, Config{Duration: time.Second, FrameInterval: -time.Millisecond}); err == nil {
		t.Fatal("negative frame interval accepted")
	}
}

func TestAnimationRunsToCompletion(t *testing.T) {
	c := simclock.New()
	var values []float64
	completed := false
	a := mustAnim(t, c, Config{
		Name:          "n",
		Duration:      100 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		OnFrame:       func(v float64) { values = append(values, v) },
		OnEnd:         func(done bool) { completed = done },
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !completed {
		t.Fatal("OnEnd(completed=false), want true")
	}
	if a.State() != StateFinished {
		t.Fatalf("State = %v, want finished", a.State())
	}
	// 10 frames at 10..100ms with linear easing: 0.1, 0.2, ..., 1.0.
	if len(values) != 10 {
		t.Fatalf("frames = %d, want 10", len(values))
	}
	for i, v := range values {
		want := float64(i+1) / 10
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("frame %d value = %v, want %v", i, v, want)
		}
	}
	if a.Peak() != 1 {
		t.Fatalf("Peak = %v, want 1", a.Peak())
	}
}

func TestFirstFrameDelay(t *testing.T) {
	c := simclock.New()
	var firstFrameAt time.Duration = -1
	a := mustAnim(t, c, Config{
		Duration:      360 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		Interpolator:  FastOutSlowIn(),
		OnFrame: func(v float64) {
			if firstFrameAt < 0 {
				firstFrameAt = c.Now()
			}
		},
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.RunUntil(25 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if firstFrameAt != 10*time.Millisecond {
		t.Fatalf("first frame at %v, want 10ms (refresh-rate delay)", firstFrameAt)
	}
	a.Cancel()
}

func TestCancelStopsFrames(t *testing.T) {
	c := simclock.New()
	frames := 0
	ended := false
	a := mustAnim(t, c, Config{
		Duration:      100 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		OnFrame:       func(float64) { frames++ },
		OnEnd:         func(done bool) { ended = !done },
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.RunUntil(35 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	a.Cancel()
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3 (at 10,20,30ms)", frames)
	}
	if a.State() != StateCanceled {
		t.Fatalf("State = %v, want canceled", a.State())
	}
	if !ended {
		t.Fatal("OnEnd not called with completed=false on cancel")
	}
	// Value frozen at last frame.
	if math.Abs(a.Value()-0.3) > 1e-9 {
		t.Fatalf("Value = %v, want 0.3", a.Value())
	}
}

func TestCancelIdempotent(t *testing.T) {
	c := simclock.New()
	ends := 0
	a := mustAnim(t, c, Config{
		Duration: 50 * time.Millisecond,
		OnEnd:    func(bool) { ends++ },
	})
	a.Cancel() // idle: no-op
	if ends != 0 {
		t.Fatal("Cancel on idle animation fired OnEnd")
	}
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	a.Cancel()
	a.Cancel()
	if ends != 1 {
		t.Fatalf("OnEnd fired %d times, want 1", ends)
	}
}

func TestDoubleStartFails(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{Duration: 50 * time.Millisecond})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := a.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}

// TestReverseRetractsValue models the notification retract: run the
// slide-down partway, reverse, and check the value returns to zero without
// ever exceeding the peak at reversal time.
func TestReverseRetractsValue(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{
		Duration:      360 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		Interpolator:  FastOutSlowIn(),
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.RunUntil(120 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	peakAtReversal := a.Value()
	if peakAtReversal <= 0 || peakAtReversal >= 1 {
		t.Fatalf("mid-animation value = %v, want in (0,1)", peakAtReversal)
	}
	if err := a.ReverseNow(); err != nil {
		t.Fatalf("ReverseNow: %v", err)
	}
	if a.State() != StateReversing {
		t.Fatalf("State = %v, want reversing", a.State())
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.State() != StateFinished {
		t.Fatalf("State = %v, want finished after reverse", a.State())
	}
	if a.Value() != 0 {
		t.Fatalf("Value = %v, want 0 after retract", a.Value())
	}
	if a.Peak() > peakAtReversal+1e-9 {
		t.Fatalf("Peak %v grew past reversal value %v", a.Peak(), peakAtReversal)
	}
}

// TestReverseBeforeFirstFrame is the attack's Λ1 case: the overlay is
// removed before any frame rendered, so reversing finishes instantly with
// nothing ever shown.
func TestReverseBeforeFirstFrame(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{
		Duration:      360 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		Interpolator:  FastOutSlowIn(),
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.RunUntil(5 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := a.ReverseNow(); err != nil {
		t.Fatalf("ReverseNow: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Peak() != 0 {
		t.Fatalf("Peak = %v, want 0 (nothing rendered)", a.Peak())
	}
	if a.Frames() != 1 {
		// A single zero-render happens as the reverse completes.
		t.Fatalf("Frames = %d, want 1", a.Frames())
	}
}

func TestReverseIdleIsNoOpWhenValueZero(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{Duration: 100 * time.Millisecond})
	if err := a.ReverseNow(); err != nil {
		t.Fatalf("ReverseNow on idle: %v", err)
	}
	if a.State() != StateFinished {
		t.Fatalf("State = %v, want finished", a.State())
	}
}

func TestReverseTwiceIsNoOp(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{Duration: 100 * time.Millisecond, FrameInterval: 10 * time.Millisecond})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := a.ReverseNow(); err != nil {
		t.Fatalf("ReverseNow: %v", err)
	}
	if err := a.ReverseNow(); err != nil {
		t.Fatalf("second ReverseNow: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Value() != 0 {
		t.Fatalf("Value = %v, want 0", a.Value())
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := simclock.New()
	a := mustAnim(t, c, Config{Duration: 30 * time.Millisecond})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Default 10ms frames, linear: 3 frames.
	if a.Frames() != 3 {
		t.Fatalf("Frames = %d, want 3", a.Frames())
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{StateIdle, "idle"},
		{StateRunning, "running"},
		{StateReversing, "reversing"},
		{StateFinished, "finished"},
		{StateCanceled, "canceled"},
		{State(99), "State(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

// TestSlowInSuppressionWindow quantifies the attack window: with the real
// 360 ms FastOutSlowIn animation and a 72-px view, no pixel renders before
// ~30 ms, so a removal within that window leaves the alert entirely
// invisible.
func TestSlowInSuppressionWindow(t *testing.T) {
	c := simclock.New()
	firstVisible := time.Duration(-1)
	a := mustAnim(t, c, Config{
		Duration:      360 * time.Millisecond,
		FrameInterval: 10 * time.Millisecond,
		Interpolator:  FastOutSlowIn(),
		OnFrame: func(v float64) {
			if firstVisible < 0 && VisiblePixels(72, v) > 0 {
				firstVisible = c.Now()
			}
		},
	})
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firstVisible <= 10*time.Millisecond {
		t.Fatalf("first visible pixel at %v; slow-in should hide the first frame", firstVisible)
	}
	if firstVisible > 100*time.Millisecond {
		t.Fatalf("first visible pixel at %v; curve too slow", firstVisible)
	}
}
