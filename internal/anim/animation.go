package anim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/simclock"
)

// State enumerates the lifecycle states of an Animation.
type State int

// Animation lifecycle. An animation starts Idle, becomes Running after
// Start, and ends Finished (ran to completion), Canceled (stopped abruptly)
// or Reversing→Finished (played backwards to zero, the notification-retract
// path).
const (
	StateIdle State = iota + 1
	StateRunning
	StateReversing
	StateFinished
	StateCanceled
)

// String renders the state for diagnostics.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateReversing:
		return "reversing"
	case StateFinished:
		return "finished"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes an animation to run.
type Config struct {
	// Name labels clock events for tracing.
	Name string
	// Duration is the total animation duration; must be positive.
	Duration time.Duration
	// FrameInterval is the refresh interval; zero selects
	// DefaultFrameInterval (10 ms). The first frame renders one interval
	// after Start.
	FrameInterval time.Duration
	// Interpolator eases the progress; nil selects Linear.
	Interpolator Interpolator
	// OnFrame, if non-nil, observes each rendered frame's eased value.
	OnFrame func(value float64)
	// OnEnd, if non-nil, fires when the animation finishes or is
	// canceled; completed is true only for a natural finish of the
	// forward direction.
	OnEnd func(completed bool)
	// FrameFault, if non-nil, is consulted each time a frame is
	// scheduled; dropping a frame skips one whole slot, jitter shifts the
	// next frame off the grid. The fault plane supplies this.
	FrameFault FaultFunc
}

// FaultFunc decides per-frame scheduling faults for the animation named
// name. The zero return (false, 0) leaves the frame clock untouched.
type FaultFunc func(name string) (dropFrame bool, jitter time.Duration)

// Animation is a frame-clocked animation on the simulation clock. It
// mirrors the behaviour the paper measures: the eased value advances only
// at frame boundaries, so there is a dead window between Start and the
// first frame, and cancellation between frames leaves the last rendered
// value on screen.
type Animation struct {
	clock   *simclock.Clock
	cfg     Config
	state   State
	started simclock.Duration
	value   float64 // last rendered eased value
	peak    float64 // max value ever rendered (for Λ classification)
	frames  int
	frameEv *simclock.Event

	// reverse bookkeeping
	revFrom     float64
	revStarted  simclock.Duration
	revDuration time.Duration
}

// New builds an animation bound to clock. It validates the configuration.
func New(clock *simclock.Clock, cfg Config) (*Animation, error) {
	if clock == nil {
		return nil, errors.New("anim: nil clock")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("anim: non-positive duration %v", cfg.Duration)
	}
	if cfg.FrameInterval == 0 {
		cfg.FrameInterval = DefaultFrameInterval
	}
	if cfg.FrameInterval < 0 {
		return nil, fmt.Errorf("anim: negative frame interval %v", cfg.FrameInterval)
	}
	if cfg.Interpolator == nil {
		cfg.Interpolator = Linear{}
	}
	if cfg.Name == "" {
		cfg.Name = "anim"
	}
	return &Animation{clock: clock, cfg: cfg, state: StateIdle}, nil
}

// State reports the current lifecycle state.
func (a *Animation) State() State { return a.state }

// Value reports the last rendered eased value in [0,1].
func (a *Animation) Value() float64 { return a.value }

// Peak reports the maximum eased value ever rendered. The System UI model
// classifies the Λ outcome of the notification alert from this.
func (a *Animation) Peak() float64 { return a.peak }

// Frames reports how many frames have rendered.
func (a *Animation) Frames() int { return a.frames }

// Start begins the forward animation. Starting a non-idle animation is an
// error.
func (a *Animation) Start() error {
	if a.state != StateIdle {
		return fmt.Errorf("anim: Start in state %v", a.state)
	}
	a.state = StateRunning
	a.started = a.clock.Now()
	a.scheduleFrame()
	return nil
}

func (a *Animation) scheduleFrame() {
	interval := a.cfg.FrameInterval
	if a.cfg.FrameFault != nil {
		drop, jitter := a.cfg.FrameFault(a.cfg.Name)
		if drop {
			interval += a.cfg.FrameInterval // the slot renders nothing
		}
		if jitter > 0 {
			interval += jitter
		}
	}
	a.frameEv = a.clock.MustAfter(interval, a.cfg.Name+"/frame", a.frame)
}

func (a *Animation) frame() {
	switch a.state {
	case StateRunning:
		elapsed := a.clock.Now() - a.started
		x := float64(elapsed) / float64(a.cfg.Duration)
		a.render(a.cfg.Interpolator.Interpolate(x))
		if x >= 1 {
			a.finish(true)
			return
		}
	case StateReversing:
		elapsed := a.clock.Now() - a.revStarted
		x := 1.0
		if a.revDuration > 0 {
			x = float64(elapsed) / float64(a.revDuration)
		}
		if x >= 1 {
			a.render(0)
			a.finish(false)
			return
		}
		a.render(a.revFrom * (1 - a.cfg.Interpolator.Interpolate(x)))
	default:
		return // canceled between scheduling and firing
	}
	a.scheduleFrame()
}

func (a *Animation) render(v float64) {
	a.value = clamp01(v)
	if a.value > a.peak {
		a.peak = a.value
	}
	a.frames++
	if a.cfg.OnFrame != nil {
		a.cfg.OnFrame(a.value)
	}
}

func (a *Animation) finish(completed bool) {
	a.state = StateFinished
	if a.frameEv != nil {
		a.clock.Cancel(a.frameEv)
		a.frameEv = nil
	}
	if a.cfg.OnEnd != nil {
		a.cfg.OnEnd(completed)
	}
}

// Cancel stops the animation immediately, leaving the last rendered value
// in place. Canceling an animation that is not running or reversing is a
// no-op.
func (a *Animation) Cancel() {
	if a.state != StateRunning && a.state != StateReversing {
		return
	}
	a.state = StateCanceled
	if a.frameEv != nil {
		a.clock.Cancel(a.frameEv)
		a.frameEv = nil
	}
	if a.cfg.OnEnd != nil {
		a.cfg.OnEnd(false)
	}
}

// ReverseNow flips a running animation into reverse: the value animates
// from its current level back to zero over a time proportional to the
// progress already made. This is the "startTopAnimation in a reverse way"
// path System UI takes when the overlay disappears mid-animation. Reversing
// an idle or finished animation at value 0 completes immediately.
func (a *Animation) ReverseNow() error {
	switch a.state {
	case StateRunning:
		// fall through to reverse below
	case StateIdle, StateFinished, StateCanceled:
		if a.value == 0 {
			a.state = StateFinished
			return nil
		}
	case StateReversing:
		return nil // already reversing
	default:
		return fmt.Errorf("anim: ReverseNow in state %v", a.state)
	}
	if a.frameEv != nil {
		a.clock.Cancel(a.frameEv)
		a.frameEv = nil
	}
	a.state = StateReversing
	a.revFrom = a.value
	a.revStarted = a.clock.Now()
	a.revDuration = time.Duration(float64(a.cfg.Duration) * a.revFrom)
	if a.revDuration <= 0 {
		a.render(0)
		a.finish(false)
		return nil
	}
	a.scheduleFrame()
	return nil
}
