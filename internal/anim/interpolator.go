// Package anim reimplements the slice of Android's animation framework the
// paper depends on: the interpolator curves (Figures 2 and 4), a cubic
// Bézier solver, and a frame-clocked Animation runner driven by the
// discrete-event simulation clock.
//
// The attack surface the paper identifies lives entirely in this package's
// semantics: the notification alert slides in under a 360 ms
// FastOutSlowInInterpolator (so nothing is visible for a long prefix of the
// animation), and toasts fade out under a 500 ms AccelerateInterpolator (so
// a replacement toast can appear before the old one visibly dims).
package anim

import (
	"fmt"
	"math"
	"time"
)

// Standard Android animation constants referenced by the paper.
const (
	// NotificationSlideDuration is ANIMATION_DURATION_STANDARD, the
	// duration of the notification alert slide-down animation.
	NotificationSlideDuration = 360 * time.Millisecond
	// ToastFadeDuration is the duration of toast enter/exit animations.
	ToastFadeDuration = 500 * time.Millisecond
	// DefaultFrameInterval is the default refresh interval; the first
	// frame of an animation renders no earlier than this.
	DefaultFrameInterval = 10 * time.Millisecond
)

// Interpolator maps an input animation fraction in [0,1] to an output
// progress fraction in [0,1]. Implementations must be monotone and fix the
// endpoints (0 ↦ 0, 1 ↦ 1).
type Interpolator interface {
	// Interpolate returns the eased progress for input fraction x.
	Interpolate(x float64) float64
	// Name reports the Android class name of the interpolator.
	Name() string
}

// clamp01 clamps x into [0,1]; interpolators tolerate slightly out-of-range
// inputs produced by frame-time arithmetic.
func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

// Linear is the identity interpolator (LinearInterpolator).
type Linear struct{}

// Interpolate implements Interpolator.
func (Linear) Interpolate(x float64) float64 { return clamp01(x) }

// Name implements Interpolator.
func (Linear) Name() string { return "LinearInterpolator" }

// Accelerate is Android's AccelerateInterpolator with factor 1:
// y = x². Toast exit animations use it, which is why a toast's
// disappearance is imperceptible early on (Fig. 4, lower curve).
type Accelerate struct{}

// Interpolate implements Interpolator.
func (Accelerate) Interpolate(x float64) float64 {
	x = clamp01(x)
	return x * x
}

// Name implements Interpolator.
func (Accelerate) Name() string { return "AccelerateInterpolator" }

// Decelerate is Android's DecelerateInterpolator with factor 1:
// y = 1 − (1−x)². Toast entry animations use it, so a new toast becomes
// visible almost immediately (Fig. 4, upper curve).
type Decelerate struct{}

// Interpolate implements Interpolator.
func (Decelerate) Interpolate(x float64) float64 {
	x = clamp01(x)
	inv := 1 - x
	return 1 - inv*inv
}

// Name implements Interpolator.
func (Decelerate) Name() string { return "DecelerateInterpolator" }

// CubicBezier is a unit cubic Bézier easing curve with control points
// (X1,Y1) and (X2,Y2); the endpoints are fixed at (0,0) and (1,1). It
// matches the CSS/Android PathInterpolator semantics: the input fraction is
// the x coordinate and the output is the corresponding y.
type CubicBezier struct {
	X1, Y1, X2, Y2 float64
	label          string
}

// NewCubicBezier builds a Bézier interpolator. Control-point x values must
// lie in [0,1] so that x(t) is a function.
func NewCubicBezier(x1, y1, x2, y2 float64, label string) (CubicBezier, error) {
	if x1 < 0 || x1 > 1 || x2 < 0 || x2 > 1 {
		return CubicBezier{}, fmt.Errorf("anim: bezier control x out of [0,1]: (%v,%v)", x1, x2)
	}
	return CubicBezier{X1: x1, Y1: y1, X2: x2, Y2: y2, label: label}, nil
}

// FastOutSlowIn is the Material-design standard curve used by the
// notification slide-down animation: cubic-bezier(0.4, 0, 0.2, 1). Under
// this curve less than 50% of the notification view is shown in the first
// 100 ms of the 360 ms animation (Fig. 2).
func FastOutSlowIn() CubicBezier {
	// Constructed directly: the control points are constants that satisfy
	// the NewCubicBezier validation (x values within [0,1]).
	return CubicBezier{X1: 0.4, Y1: 0, X2: 0.2, Y2: 1, label: "FastOutSlowInInterpolator"}
}

func bezierCoord(t, p1, p2 float64) float64 {
	// Cubic Bézier with endpoints 0 and 1:
	// B(t) = 3(1−t)²t·p1 + 3(1−t)t²·p2 + t³
	mt := 1 - t
	return 3*mt*mt*t*p1 + 3*mt*t*t*p2 + t*t*t
}

func bezierCoordDeriv(t, p1, p2 float64) float64 {
	mt := 1 - t
	return 3*mt*mt*p1 + 6*mt*t*(p2-p1) + 3*t*t*(1-p2)
}

// solveT finds the curve parameter t with x(t) = x, using Newton iteration
// with a bisection fallback; the curve's x(t) is monotone because the
// control x values lie in [0,1].
func (b CubicBezier) solveT(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	t := x
	for i := 0; i < 8; i++ {
		err := bezierCoord(t, b.X1, b.X2) - x
		if math.Abs(err) < 1e-9 {
			return t
		}
		d := bezierCoordDeriv(t, b.X1, b.X2)
		if math.Abs(d) < 1e-7 {
			break
		}
		t = clamp01(t - err/d)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if bezierCoord(mid, b.X1, b.X2) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Interpolate implements Interpolator.
func (b CubicBezier) Interpolate(x float64) float64 {
	x = clamp01(x)
	t := b.solveT(x)
	return clamp01(bezierCoord(t, b.Y1, b.Y2))
}

// Name implements Interpolator.
func (b CubicBezier) Name() string {
	if b.label != "" {
		return b.label
	}
	return fmt.Sprintf("CubicBezier(%.2f,%.2f,%.2f,%.2f)", b.X1, b.Y1, b.X2, b.Y2)
}

// Reverse wraps an interpolator so that progress runs from 1 to 0; used
// when System UI plays the slide-down animation "in a reverse way" to
// retract a partially shown notification.
type Reverse struct {
	Inner Interpolator
}

// Interpolate implements Interpolator.
func (r Reverse) Interpolate(x float64) float64 {
	return 1 - r.Inner.Interpolate(clamp01(x))
}

// Name implements Interpolator.
func (r Reverse) Name() string { return "Reverse(" + r.Inner.Name() + ")" }

// Compile-time interface checks.
var (
	_ Interpolator = Linear{}
	_ Interpolator = Accelerate{}
	_ Interpolator = Decelerate{}
	_ Interpolator = CubicBezier{}
	_ Interpolator = Reverse{}
)

// Sample evaluates an interpolator at n+1 evenly spaced instants across a
// duration and returns (time, completeness) pairs. The experiment harness
// uses it to regenerate the curves of Figures 2 and 4.
func Sample(ip Interpolator, duration time.Duration, n int) []CurvePoint {
	if n < 1 {
		n = 1
	}
	out := make([]CurvePoint, 0, n+1)
	for i := 0; i <= n; i++ {
		x := float64(i) / float64(n)
		out = append(out, CurvePoint{
			At:           time.Duration(float64(duration) * x),
			Completeness: ip.Interpolate(x),
		})
	}
	return out
}

// CurvePoint is one sample of an animation-completeness curve.
type CurvePoint struct {
	// At is the elapsed time into the animation.
	At time.Duration
	// Completeness is the eased progress in [0,1].
	Completeness float64
}

// VisiblePixels converts an animation completeness into the number of
// physical pixels of a view of the given height that are actually rendered.
// Android rounds down: the paper's Nexus 6P example shows a 72-pixel view
// with 0.17% completeness renders ⌊0.1224⌋ = 0 pixels, so the first frame
// shows nothing.
func VisiblePixels(heightPx int, completeness float64) int {
	if heightPx <= 0 {
		return 0
	}
	px := int(math.Floor(float64(heightPx) * clamp01(completeness)))
	if px > heightPx {
		return heightPx
	}
	return px
}
