// Package fleet generates seeded, market-share-weighted synthetic device
// populations behind the device.Catalog interface. A Fleet is built from
// (size, seed) alone: each device draws its OEM family, Android version,
// display, animation scaling, background load, popularity weight and
// fault calibration from named simrand sub-streams of its own per-device
// stream, so generation is byte-identical at any worker count and device
// i's identity never depends on how many devices were generated before
// it. The hand-calibrated seed catalog answers "what happens on these 30
// phones"; a Fleet answers "what fraction of the market is exposed".
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simrand"
)

// family is one OEM animation/market family: a share prior in the
// market distribution, an Android version mix, display pool, the OEM
// skin's timing character (overall and notification-path scaling, the
// family-mean Tv residual that Table II absorbs per-phone), the family's
// base animation-duration scaling, and a fault tier.
type family struct {
	name         string
	manufacturer string
	// share is the market-share prior; the per-fleet realized shares are
	// jittered around these and renormalized.
	share float64
	// versions is the Android version mix (weights need not sum to 1;
	// they are normalized at draw time).
	versions []versionShare
	screens  []screen
	// timingLo/Hi bound the per-device uniform TimingScale draw;
	// notifLo/Hi the additional notification-path scaling.
	timingLo, timingHi float64
	notifLo, notifHi   float64
	// tvResidualMS is the family-mean extra view-construction latency
	// (device.SynthSpec.TvResidualMS).
	tvResidualMS float64
	// animBase is the OEM's system animation-duration scaling; the
	// per-device animator_duration_scale is animBase times the user
	// setting drawn in userAnimatorScale.
	animBase float64
	// faultScale multiplies the base per-device fault mix; thermalProb
	// is the family's propensity to throttle under sustained load.
	faultScale  float64
	thermalProb float64
}

type versionShare struct {
	v device.AndroidVersion
	w float64
}

type screen struct {
	w, h int
	dpi  float64
}

// families is the market model: shares follow the rough global Android
// vendor split (Samsung heavy, then the Chinese OEMs, stock and OnePlus
// small, a low-end long tail). Timing characters encode the paper's
// observation that heavily skinned OSes run slower notification paths.
// The share priors sum to 1 by construction.
func familyTable() []family {
	return []family{
		{
			name: "stock", manufacturer: "Google", share: 0.12,
			versions: []versionShare{{device.V(10), 0.2}, {device.V(11), 0.45}, {device.V(12), 0.35}},
			screens:  []screen{{1080, 2340, 440}, {1440, 3120, 560}},
			timingLo: 0.88, timingHi: 1.02, notifLo: 0.95, notifHi: 1.05,
			tvResidualMS: 150, animBase: 1.0, faultScale: 0.7, thermalProb: 0.10,
		},
		{
			name: "oneui", manufacturer: "Samsung", share: 0.28,
			versions: []versionShare{{device.V(9), 0.15}, {device.V(10), 0.35}, {device.V(11), 0.35}, {device.V(12), 0.15}},
			screens:  []screen{{1080, 2400, 421}, {1440, 3200, 511}, {720, 1600, 274}},
			timingLo: 0.98, timingHi: 1.22, notifLo: 1.0, notifHi: 1.3,
			tvResidualMS: 220, animBase: 1.0, faultScale: 1.0, thermalProb: 0.15,
		},
		{
			name: "miui", manufacturer: "Xiaomi", share: 0.16,
			versions: []versionShare{{device.V(9), 0.2}, {device.V(10), 0.4}, {device.V(11), 0.3}, {device.V(12), 0.1}},
			screens:  []screen{{1080, 2400, 395}, {1080, 2340, 403}},
			timingLo: 1.05, timingHi: 1.35, notifLo: 1.1, notifHi: 1.5,
			tvResidualMS: 260, animBase: 0.9, faultScale: 1.2, thermalProb: 0.25,
		},
		{
			name: "emui", manufacturer: "Huawei", share: 0.12,
			versions: []versionShare{{device.V(9), 0.3}, {device.V(10), 0.5}, {device.V(11), 0.2}},
			screens:  []screen{{1080, 2340, 398}, {1200, 2640, 440}},
			timingLo: 1.0, timingHi: 1.3, notifLo: 1.05, notifHi: 1.4,
			tvResidualMS: 250, animBase: 1.0, faultScale: 1.1, thermalProb: 0.20,
		},
		{
			name: "coloros", manufacturer: "Oppo", share: 0.10,
			versions: []versionShare{{device.V(9), 0.2}, {device.V(10), 0.45}, {device.V(11), 0.35}},
			screens:  []screen{{1080, 2400, 402}, {720, 1612, 269}},
			timingLo: 1.02, timingHi: 1.3, notifLo: 1.05, notifHi: 1.4,
			tvResidualMS: 240, animBase: 1.0, faultScale: 1.1, thermalProb: 0.25,
		},
		{
			name: "funtouch", manufacturer: "Vivo", share: 0.09,
			versions: []versionShare{{device.V(9), 0.25}, {device.V(10), 0.45}, {device.V(11), 0.3}},
			screens:  []screen{{1080, 2400, 408}, {720, 1544, 267}},
			timingLo: 1.02, timingHi: 1.32, notifLo: 1.05, notifHi: 1.45,
			tvResidualMS: 230, animBase: 1.1, faultScale: 1.1, thermalProb: 0.25,
		},
		{
			name: "oxygenos", manufacturer: "OnePlus", share: 0.05,
			versions: []versionShare{{device.V(10), 0.3}, {device.V(11), 0.45}, {device.V(12), 0.25}},
			screens:  []screen{{1080, 2400, 402}, {1440, 3216, 525}},
			timingLo: 0.9, timingHi: 1.08, notifLo: 0.95, notifHi: 1.1,
			tvResidualMS: 170, animBase: 1.0, faultScale: 0.8, thermalProb: 0.12,
		},
		{
			name: "lowend", manufacturer: "Generic", share: 0.08,
			versions: []versionShare{{device.V(8), 0.35}, {device.V(9), 0.4}, {device.V(10), 0.25}},
			screens:  []screen{{720, 1520, 271}, {720, 1600, 270}},
			timingLo: 1.25, timingHi: 1.7, notifLo: 1.15, notifHi: 1.6,
			tvResidualMS: 320, animBase: 1.0, faultScale: 1.6, thermalProb: 0.45,
		},
	}
}

// animationsOffRate is the fraction of the population running with
// animator_duration_scale = 0 — the accessibility ("remove animations")
// setting. Drawn independently of family.
const animationsOffRate = 0.025

// Background-app load: devices carry 0..maxBackgroundApps background
// apps, folded into the profile via WithLoad (the paper finds the effect
// on the attack window negligible; it is modeled for fidelity, not
// effect size).
const maxBackgroundApps = 9

// Entry is one generated device: its calibrated profile, its normalized
// market-share weight (a Fleet's weights sum to 1), its per-device fault
// calibration and the background-app load already folded into Profile.
type Entry struct {
	Profile device.Profile
	// Weight is the device's market share: the family's realized share
	// times a per-device popularity draw, normalized over the fleet.
	Weight float64
	// Faults is the device's calibrated fault profile: the family's
	// fault tier scaled by a per-device reliability draw, plus the
	// thermal-throttling propensity. It is advisory — experiments decide
	// whether to attach it.
	Faults faults.Profile
	// Background is the number of background apps (already applied to
	// Profile via WithLoad).
	Background int
}

// Fleet is a generated device population. It implements device.Catalog.
type Fleet struct {
	size    int
	seed    int64
	entries []Entry
	byModel map[string]int
	// defaultIdx is the highest-weight device.
	defaultIdx int
}

// Generate builds the fleet for (size, seed). The same pair always
// yields the same fleet, byte for byte.
func Generate(size int, seed int64) (*Fleet, error) {
	if size <= 0 {
		return nil, fmt.Errorf("fleet: size must be positive, got %d", size)
	}
	fams := familyTable()
	shares := realizedShares(fams, seed)

	f := &Fleet{
		size:    size,
		seed:    seed,
		entries: make([]Entry, size),
		byModel: make(map[string]int, size),
	}
	var totalWeight float64
	for i := 0; i < size; i++ {
		e := generateDevice(fams, shares, seed, i)
		f.entries[i] = e
		totalWeight += e.Weight
	}
	for i := range f.entries {
		f.entries[i].Weight /= totalWeight
		f.byModel[f.entries[i].Profile.Model] = i
		if f.entries[i].Weight > f.entries[f.defaultIdx].Weight {
			f.defaultIdx = i
		}
	}
	return f, nil
}

// realizedShares jitters the family share priors for this fleet seed and
// renormalizes: market splits move between quarters, so two fleets with
// different seeds see slightly different vendor mixes.
func realizedShares(fams []family, seed int64) []float64 {
	rng := simrand.New(seed).Derive("fleet/families")
	shares := make([]float64, len(fams))
	var sum float64
	for i, fam := range fams {
		shares[i] = fam.share * rng.TruncNormal(1, 0.1, 0.7, 1.3)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// generateDevice draws device i. Everything comes from named sub-streams
// of the device's own stream, which is derived from a fresh parent so it
// depends only on (seed, i).
func generateDevice(fams []family, shares []float64, seed int64, i int) Entry {
	dev := simrand.New(seed).DeriveIndexed("fleet/device", i)
	// Sub-stream derivation order is fixed; each class draws only from
	// its own stream, so adding a draw to one class never shifts another.
	pick := dev.Derive("fleet/pick")
	scales := dev.Derive("fleet/scales")
	pop := dev.Derive("fleet/popularity")
	load := dev.Derive("fleet/load")
	fcal := dev.Derive("fleet/faults")

	famIdx := pickWeighted(pick, shares)
	fam := fams[famIdx]
	ver := pickVersion(pick, fam.versions)
	scr := fam.screens[pick.Intn(len(fam.screens))]
	userScale := userAnimatorScale(pick)
	animOff := pick.Bool(animationsOffRate)

	spec := device.SynthSpec{
		Manufacturer:   fam.manufacturer,
		Model:          fmt.Sprintf("%s-%04d", fam.name, i),
		Family:         fam.name,
		Version:        ver,
		ScreenW:        scr.w,
		ScreenH:        scr.h,
		DPI:            scr.dpi,
		TimingScale:    uniformIn(scales, fam.timingLo, fam.timingHi),
		NotifPathScale: uniformIn(scales, fam.notifLo, fam.notifHi),
		AnimatorScale:  fam.animBase * userScale,
		AnimationsOff:  animOff,
		TvResidualMS:   fam.tvResidualMS,
	}
	profile := device.Synthesize(spec, dev)

	background := load.Intn(maxBackgroundApps + 1)
	profile = profile.WithLoad(background)

	// Popularity is lognormal: a few hero SKUs carry most of a family's
	// share, with a long tail of minor models. Family membership is
	// already drawn in proportion to the realized shares, so the raw
	// weight is the popularity draw alone — multiplying the share in
	// again would square the family's market presence.
	weight := math.Exp(pop.Normal(0, 0.55))

	return Entry{
		Profile:    profile,
		Weight:     weight,
		Faults:     deviceFaults(fam, fcal),
		Background: background,
	}
}

// pickWeighted draws an index from normalized weights.
func pickWeighted(rng *simrand.Source, weights []float64) int {
	r := rng.Float64()
	var cum float64
	for i, w := range weights {
		cum += w
		if r < cum {
			return i
		}
	}
	return len(weights) - 1
}

func pickVersion(rng *simrand.Source, vs []versionShare) device.AndroidVersion {
	var sum float64
	for _, v := range vs {
		sum += v.w
	}
	r := rng.Float64() * sum
	var cum float64
	for _, v := range vs {
		cum += v.w
		if r < cum {
			return v.v
		}
	}
	return vs[len(vs)-1].v
}

// userAnimatorScale draws the user's animator_duration_scale developer
// setting: overwhelmingly the stock 1x, a small population at 0.5x and
// 1.5x.
func userAnimatorScale(rng *simrand.Source) float64 {
	r := rng.Float64()
	switch {
	case r < 0.04:
		return 0.5
	case r > 0.98:
		return 1.5
	default:
		return 1.0
	}
}

func uniformIn(rng *simrand.Source, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// deviceFaults calibrates the device's fault profile: the base mix
// (binder spikes and rare drops, mild frame faults, scheduler
// preemption — no toast pressure, so fleet stacks stay drivable with
// run-to-empty) scaled by the family's fault tier and a per-device
// reliability multiplier, plus the family's thermal-throttling
// propensity.
func deviceFaults(fam family, rng *simrand.Source) faults.Profile {
	mult := rng.TruncNormal(1, 0.3, 0.4, 2.0)
	thermalMult := rng.TruncNormal(1, 0.25, 0.5, 1.8)
	p := faults.Profile{
		Name:            "fleet/" + fam.name,
		DropProb:        0.002,
		SpikeProb:       0.03,
		Spike:           simrand.NormalDist(40, 15),
		FrameDropProb:   0.01,
		FrameJitterProb: 0.04,
		FrameJitter:     simrand.NormalDist(3, 1.5),
		PreemptProb:     0.05,
		Preempt:         simrand.NormalDist(30, 10),
	}.Scale(fam.faultScale * mult)
	p.ThermalProb = clamp01(fam.thermalProb * thermalMult)
	p.ThermalOnsetFrames = 60
	p.ThermalRampFrames = 120
	p.ThermalMaxDrift = simrand.NormalDist(6, 2)
	return p
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// --- device.Catalog ---

// Name identifies the fleet for experiment params and journal identity.
func (f *Fleet) Name() string { return fmt.Sprintf("fleet(size=%d,seed=%d)", f.size, f.seed) }

// Size reports the number of generated devices.
func (f *Fleet) Size() int { return f.size }

// Seed reports the generation seed.
func (f *Fleet) Seed() int64 { return f.seed }

// Entries returns the generated devices in generation order. Callers
// must not mutate the returned slice.
func (f *Fleet) Entries() []Entry { return f.entries }

// Profiles implements device.Catalog.
func (f *Fleet) Profiles() []device.Profile {
	out := make([]device.Profile, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.Profile
	}
	return out
}

// ByModel implements device.Catalog.
func (f *Fleet) ByModel(model string) (device.Profile, bool) {
	i, ok := f.byModel[model]
	if !ok {
		return device.Profile{}, false
	}
	return f.entries[i].Profile, true
}

// Default implements device.Catalog: the highest-market-share device.
func (f *Fleet) Default() device.Profile { return f.entries[f.defaultIdx].Profile }

// Entry returns the full entry for a model.
func (f *Fleet) Entry(model string) (Entry, bool) {
	i, ok := f.byModel[model]
	if !ok {
		return Entry{}, false
	}
	return f.entries[i], true
}

// --- manifest ---

// familyStat aggregates one family's slice of the fleet for Manifest.
type familyStat struct {
	name    string
	count   int
	weight  float64
	sumD    time.Duration
	animOff int
	thermal float64
}

// Manifest renders the fleet's composition as a deterministic table:
// per-family device counts, realized market share, the market-weighted
// mean analytical attack window, the animations-off population and the
// mean thermal propensity. It is the golden-tested generation artifact —
// byte-identical for a given (size, seed) at any worker count.
func (f *Fleet) Manifest() string {
	stats := map[string]*familyStat{}
	var order []string
	var offCount int
	var offWeight, meanD float64
	for _, e := range f.entries {
		famName := e.Profile.Family
		st, ok := stats[famName]
		if !ok {
			st = &familyStat{name: famName}
			stats[famName] = st
			order = append(order, famName)
		}
		st.count++
		st.weight += e.Weight
		st.sumD += e.Profile.ExpectedUpperBoundD()
		st.thermal += e.Faults.ThermalProb
		if e.Profile.AnimationsOff {
			st.animOff++
			offCount++
			offWeight += e.Weight
		}
		meanD += e.Weight * float64(e.Profile.ExpectedUpperBoundD())
	}
	sort.Strings(order)

	var b strings.Builder
	fmt.Fprintf(&b, "Device fleet manifest — %s\n", f.Name())
	fmt.Fprintf(&b, "%d devices, %d OEM families; weights sum to 1\n\n", f.size, len(order))
	fmt.Fprintf(&b, "%-10s %-10s %7s %8s %12s %9s %9s\n",
		"family", "vendor", "count", "share", "mean D", "anim-off", "thermal")
	for _, name := range order {
		st := stats[name]
		vendor := ""
		for _, fam := range familyTable() {
			if fam.name == name {
				vendor = fam.manufacturer
			}
		}
		meanFamD := time.Duration(int64(st.sumD) / int64(st.count)).Round(time.Millisecond)
		fmt.Fprintf(&b, "%-10s %-10s %7d %7.2f%% %12v %9d %8.2f%%\n",
			name, vendor, st.count, 100*st.weight, meanFamD, st.animOff,
			100*st.thermal/float64(st.count))
	}
	fmt.Fprintf(&b, "\nmarket-weighted mean analytical D bound: %v\n",
		time.Duration(meanD).Round(time.Millisecond))
	fmt.Fprintf(&b, "animations-off population: %d devices (%.2f%% of market share)\n",
		offCount, 100*offWeight)
	return b.String()
}
