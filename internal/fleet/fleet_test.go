package fleet

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/experiment/sched"
)

// update regenerates the golden manifests instead of comparing:
//
//	go test ./internal/fleet -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the current code")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden %s\n-- got --\n%s\n-- want --\n%s\n(run with -update if the change is intentional)",
			name, path, got, string(want))
	}
}

var _ device.Catalog = (*Fleet)(nil)

func mustGenerate(t *testing.T, size int, seed int64) *Fleet {
	t.Helper()
	f, err := Generate(size, seed)
	if err != nil {
		t.Fatalf("Generate(%d, %d): %v", size, seed, err)
	}
	return f
}

// TestWeightsSumToOne is the normalization property from the issue:
// market-share weights sum to 1 at every size and seed.
func TestWeightsSumToOne(t *testing.T) {
	for _, size := range []int{1, 7, 50, 200, 1000} {
		for _, seed := range []int64{1, 2, 7, 42} {
			f := mustGenerate(t, size, seed)
			var sum float64
			for _, e := range f.Entries() {
				sum += e.Weight
				if e.Weight <= 0 {
					t.Fatalf("size=%d seed=%d: nonpositive weight %v for %s", size, seed, e.Weight, e.Profile.Model)
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("size=%d seed=%d: weights sum to %.12f, want 1", size, seed, sum)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, 200, 42)
	b := mustGenerate(t, 200, 42)
	if !reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Fatal("same (size, seed) generated different fleets")
	}
	c := mustGenerate(t, 200, 43)
	if reflect.DeepEqual(a.Entries(), c.Entries()) {
		t.Fatal("different seeds generated identical fleets")
	}
}

// TestGenerateConcurrentlyIdentical generates the same fleet from 8
// concurrent workers on the trial scheduler (the repo's one sanctioned
// concurrency layer): the result must be byte-identical regardless of
// scheduling — the generation-side half of the workers-1/2/8 contract.
func TestGenerateConcurrentlyIdentical(t *testing.T) {
	want := mustGenerate(t, 120, 42)
	got := make([]*Fleet, 8)
	err := sched.Run(context.Background(), 8, len(got), func(i int) error {
		f, err := Generate(120, 42)
		if err != nil {
			return err
		}
		got[i] = f
		return nil
	})
	if err != nil {
		t.Fatalf("concurrent Generate: %v", err)
	}
	for i, f := range got {
		if !reflect.DeepEqual(f.Entries(), want.Entries()) {
			t.Fatalf("worker %d generated a different fleet", i)
		}
	}
}

// TestPrefixStability: device i depends only on (seed, i), so a smaller
// fleet is a prefix of a larger one up to weight renormalization.
func TestPrefixStability(t *testing.T) {
	small := mustGenerate(t, 100, 42)
	large := mustGenerate(t, 200, 42)
	for i := range small.Entries() {
		se, le := small.Entries()[i], large.Entries()[i]
		if !reflect.DeepEqual(se.Profile, le.Profile) {
			t.Fatalf("device %d profile changed when the fleet grew", i)
		}
		if !reflect.DeepEqual(se.Faults, le.Faults) {
			t.Fatalf("device %d fault calibration changed when the fleet grew", i)
		}
		if se.Background != le.Background {
			t.Fatalf("device %d background load changed when the fleet grew", i)
		}
	}
	// Weights renormalize but stay proportional.
	r0 := small.Entries()[0].Weight / large.Entries()[0].Weight
	for i := range small.Entries() {
		r := small.Entries()[i].Weight / large.Entries()[i].Weight
		if math.Abs(r-r0) > 1e-9*r0 {
			t.Fatalf("device %d weight not proportional across fleet sizes", i)
		}
	}
}

func TestGoldenManifest(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		f := mustGenerate(t, 250, seed)
		checkGolden(t, fmt.Sprintf("manifest_seed%d", seed), f.Manifest())
	}
}

func TestCatalogSurface(t *testing.T) {
	f := mustGenerate(t, 100, 42)
	if f.Name() != "fleet(size=100,seed=42)" {
		t.Fatalf("Name = %q", f.Name())
	}
	models := map[string]bool{}
	for _, p := range f.Profiles() {
		if models[p.Model] {
			t.Fatalf("duplicate model %q", p.Model)
		}
		models[p.Model] = true
		got, ok := f.ByModel(p.Model)
		if !ok || !reflect.DeepEqual(got, p) {
			t.Fatalf("ByModel(%q) does not round-trip", p.Model)
		}
		if p.Family == "" {
			t.Fatalf("%s has no family tag", p.Model)
		}
	}
	if _, ok := f.ByModel("pixel 2"); ok {
		t.Fatal("fleet resolved a seed-catalog model name")
	}
	// Default is the highest-weight device.
	def := f.Default()
	e, ok := f.Entry(def.Model)
	if !ok {
		t.Fatalf("Default() model %q missing from fleet", def.Model)
	}
	for _, other := range f.Entries() {
		if other.Weight > e.Weight {
			t.Fatalf("Default() %s (w=%v) outweighed by %s (w=%v)",
				def.Model, e.Weight, other.Profile.Model, other.Weight)
		}
	}
}

// TestPopulationShape sanity-checks the distributions at a size large
// enough for the law of large numbers: the animations-off population
// lands near its 2.5% rate, every family is represented, and the fault
// calibrations are valid probabilities with the thermal plane armed.
func TestPopulationShape(t *testing.T) {
	f := mustGenerate(t, 4000, 42)
	var off, thermalArmed int
	fams := map[string]int{}
	for _, e := range f.Entries() {
		fams[e.Profile.Family]++
		if e.Profile.AnimationsOff {
			off++
		}
		fp := e.Faults
		for _, pr := range []float64{fp.DropProb, fp.SpikeProb, fp.FrameDropProb, fp.FrameJitterProb, fp.PreemptProb, fp.ThermalProb} {
			if pr < 0 || pr > 1 {
				t.Fatalf("%s: fault probability %v outside [0,1]", e.Profile.Model, pr)
			}
		}
		if fp.ThermalProb > 0 {
			thermalArmed++
			if fp.ThermalOnsetFrames <= 0 || fp.ThermalRampFrames <= 0 {
				t.Fatalf("%s: thermal armed without onset/ramp", e.Profile.Model)
			}
		}
		if e.Background < 0 || e.Background > maxBackgroundApps {
			t.Fatalf("%s: background load %d out of range", e.Profile.Model, e.Background)
		}
		if e.Background > 0 && e.Profile.LoadFactor <= 1 {
			t.Fatalf("%s: %d background apps but LoadFactor %v", e.Profile.Model, e.Background, e.Profile.LoadFactor)
		}
	}
	rate := float64(off) / float64(f.Size())
	if rate < 0.01 || rate > 0.05 {
		t.Fatalf("animations-off rate %.3f, want ≈ %.3f", rate, animationsOffRate)
	}
	if len(fams) != len(familyTable()) {
		t.Fatalf("only %d of %d families represented at size 4000", len(fams), len(familyTable()))
	}
	if thermalArmed == 0 {
		t.Fatal("no device carries a thermal propensity")
	}
}

func TestGenerateRejectsBadSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		if _, err := Generate(size, 42); err == nil {
			t.Fatalf("Generate(%d, 42) did not error", size)
		}
	}
}
