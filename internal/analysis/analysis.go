// Package analysis implements the closed-form timing model of the paper's
// Section III-D — Equations (1)–(3) — so it can be validated against the
// discrete-event simulation:
//
//	(1)  Tm = Σᵢ Tmisⁱ + T¹am + T¹as           (total mistouch time)
//	(2)  E(Tm) = (⌈T/D⌉ − 1)·E(Tmis) + E(Tam) + E(Tas)
//	(3)  D ≤ Tn + Tv + Ta                      (alert-suppression bound)
//
// The harness uses these to predict mistouch exposure, expected capture
// rates and the Λ1 upper bound of D analytically, and the tests check the
// simulation reproduces the predictions — the ablation that ties the
// paper's math to its system behaviour.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/device"
)

// ExpectedTmis is E(Tmis) = E(Tam) + E(Tas) − E(Trm), floored at zero.
func ExpectedTmis(p device.Profile) time.Duration {
	return p.ExpectedTmis()
}

// ExpectedMistouchTime evaluates Equation (2): the expected total time
// without a malicious overlay on screen during an attack of total period T
// with attacking window D.
func ExpectedMistouchTime(p device.Profile, total, d time.Duration) (time.Duration, error) {
	if total <= 0 {
		return 0, fmt.Errorf("analysis: non-positive attack period %v", total)
	}
	if d <= 0 {
		return 0, fmt.Errorf("analysis: non-positive attacking window %v", d)
	}
	n := int64(math.Ceil(float64(total) / float64(d)))
	if n < 1 {
		n = 1
	}
	tm := time.Duration(n-1)*ExpectedTmis(p) + p.Tam.MeanDuration() + p.Tas.MeanDuration()
	return tm, nil
}

// AttackPeriod computes the attacker's sizing rule T = S × L: typing speed
// (seconds per key) times password length (Section III-D).
func AttackPeriod(perKey time.Duration, passwordLen int) (time.Duration, error) {
	if perKey <= 0 {
		return 0, fmt.Errorf("analysis: non-positive per-key time %v", perKey)
	}
	if passwordLen <= 0 {
		return 0, fmt.Errorf("analysis: non-positive password length %d", passwordLen)
	}
	return time.Duration(passwordLen) * perKey, nil
}

// ExpectedDownCaptureRate predicts the probability that a touch DOWN lands
// while an overlay is attached: the per-cycle coverage 1 − Tmis/(D+Tmis).
// This drives the password keystroke loss (Table III length errors).
func ExpectedDownCaptureRate(p device.Profile, d time.Duration) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("analysis: non-positive attacking window %v", d)
	}
	tmis := float64(ExpectedTmis(p))
	return 1 - tmis/(float64(d)+tmis), nil
}

// ExpectedGestureCaptureRate predicts the probability that a *complete*
// gesture (DOWN and UP) is captured: the gesture fails if the DOWN lands
// in the mistouch gap or an overlay swap occurs within the press window —
// the Fig. 7 quantity.
func ExpectedGestureCaptureRate(p device.Profile, d, pressWindow time.Duration) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("analysis: non-positive attacking window %v", d)
	}
	if pressWindow < 0 {
		return 0, fmt.Errorf("analysis: negative press window %v", pressWindow)
	}
	tmis := float64(ExpectedTmis(p))
	cycle := float64(d) + tmis
	loss := (tmis + float64(pressWindow)) / cycle
	if loss > 1 {
		loss = 1
	}
	return 1 - loss, nil
}

// UpperBoundD evaluates the instantiated Equation (3): the largest D for
// which the alert-removal notice reaches System UI before the slide-down
// animation renders a visible pixel,
//
//	D ≤ Tam + Tas + ANA + TnShow + Tv + Tfv − Trm − TnRemove,
//
// where Tfv is the first-visible-frame offset for the device's alert view
// height. This matches device.Profile.ExpectedUpperBoundD and exists here
// as the explicit Equation (3) form.
func UpperBoundD(p device.Profile) time.Duration {
	return p.ExpectedUpperBoundD()
}

// MistouchBudget reports how many keystrokes an attack of period T at
// window D is expected to lose, given one keystroke every perKey: the
// expected mistouch time divided by per-key spacing, i.e. the length-error
// exposure of Table III.
func MistouchBudget(p device.Profile, total, d, perKey time.Duration) (float64, error) {
	if perKey <= 0 {
		return 0, fmt.Errorf("analysis: non-positive per-key time %v", perKey)
	}
	tm, err := ExpectedMistouchTime(p, total, d)
	if err != nil {
		return 0, err
	}
	return float64(tm) / float64(perKey), nil
}

// ErrNoProfile reports a missing device profile in lookup helpers.
var ErrNoProfile = errors.New("analysis: unknown device model")

// PredictTableII evaluates Equation (3) for every evaluation device,
// pairing the analytical bound with the paper's measurement.
func PredictTableII() []BoundPrediction {
	profiles := device.Profiles()
	out := make([]BoundPrediction, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, BoundPrediction{
			Model:      p.Model,
			Version:    p.Version.String(),
			Analytical: UpperBoundD(p),
			Paper:      p.PaperUpperBoundD,
		})
	}
	return out
}

// BoundPrediction pairs Equation (3) with Table II for one device.
type BoundPrediction struct {
	Model      string
	Version    string
	Analytical time.Duration
	Paper      time.Duration
}
