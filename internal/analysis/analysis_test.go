package analysis

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

const evilApp binder.ProcessID = "com.evil.app"

func TestExpectedMistouchTimeValidation(t *testing.T) {
	p := device.Default()
	if _, err := ExpectedMistouchTime(p, 0, time.Second); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := ExpectedMistouchTime(p, time.Second, 0); err == nil {
		t.Fatal("zero D accepted")
	}
}

func TestEquation2Monotonicity(t *testing.T) {
	p := device.Default()
	// E(Tm) decreases as D increases (the paper's key observation about
	// choosing D).
	prev := time.Duration(1<<62 - 1)
	for _, d := range []time.Duration{50, 100, 150, 200, 300} {
		tm, err := ExpectedMistouchTime(p, 10*time.Second, d*time.Millisecond)
		if err != nil {
			t.Fatalf("ExpectedMistouchTime: %v", err)
		}
		if tm > prev {
			t.Fatalf("E(Tm) increased at D=%vms: %v > %v", d, tm, prev)
		}
		prev = tm
	}
}

// TestEquation2MatchesSimulation is the math-versus-system ablation: the
// simulated total no-overlay time during an attack run must match
// Equation (2) within a tight tolerance.
func TestEquation2MatchesSimulation(t *testing.T) {
	for _, model := range []string{"mi8", "mi9"} {
		model := model
		t.Run(model, func(t *testing.T) {
			p, ok := device.ByModel(model)
			if !ok {
				t.Fatalf("profile %s missing", model)
			}
			const total = 20 * time.Second
			d := 200 * time.Millisecond

			st, err := sysserver.Assemble(p, 61)
			if err != nil {
				t.Fatalf("Assemble: %v", err)
			}
			st.WM.GrantOverlayPermission(evilApp)
			atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
				App: evilApp, D: d,
				Bounds: geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH)),
			})
			if err != nil {
				t.Fatalf("NewOverlayAttack: %v", err)
			}
			if err := atk.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
			// Integrate the no-overlay time by sampling at 0.5 ms.
			var bare time.Duration
			last := time.Duration(0)
			var probe func()
			probe = func() {
				now := st.Clock.Now()
				if now > total {
					return
				}
				if st.WM.OverlayCount(evilApp) == 0 {
					bare += now - last
				}
				last = now
				st.Clock.MustAfter(500*time.Microsecond, "probe", probe)
			}
			st.Clock.MustAfter(0, "probe", probe)
			st.Clock.MustAfter(total, "stop", atk.Stop)
			if err := st.Clock.RunFor(total + time.Second); err != nil {
				t.Fatalf("RunFor: %v", err)
			}

			want, err := ExpectedMistouchTime(p, total, d)
			if err != nil {
				t.Fatalf("ExpectedMistouchTime: %v", err)
			}
			diff := bare - want
			if diff < 0 {
				diff = -diff
			}
			// Tolerance: sampling quantization + spike variance. The
			// prediction is ~60-220 ms over 20 s; allow 40%.
			if float64(diff) > 0.4*float64(want)+float64(10*time.Millisecond) {
				t.Fatalf("simulated mistouch %v vs Equation (2) %v (Δ %v)", bare, want, diff)
			}
		})
	}
}

func TestExpectedDownCaptureRate(t *testing.T) {
	p, ok := device.ByModel("mi9") // Android 10, E[Tmis] ≈ 2.2 ms
	if !ok {
		t.Fatal("mi9 missing")
	}
	r, err := ExpectedDownCaptureRate(p, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("ExpectedDownCaptureRate: %v", err)
	}
	if r < 0.97 || r >= 1 {
		t.Fatalf("rate = %v, want ≈0.989", r)
	}
	if _, err := ExpectedDownCaptureRate(p, 0); err == nil {
		t.Fatal("zero D accepted")
	}
}

func TestExpectedGestureCaptureRate(t *testing.T) {
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 missing")
	}
	press := 14 * time.Millisecond
	r50, err := ExpectedGestureCaptureRate(p, 50*time.Millisecond, press)
	if err != nil {
		t.Fatalf("rate at 50ms: %v", err)
	}
	r200, err := ExpectedGestureCaptureRate(p, 200*time.Millisecond, press)
	if err != nil {
		t.Fatalf("rate at 200ms: %v", err)
	}
	if !(r50 < r200) {
		t.Fatalf("capture not increasing in D: %v vs %v", r50, r200)
	}
	// Fig. 7 band: ~0.6-0.75 at 50 ms, ~0.9+ at 200 ms.
	if r50 < 0.55 || r50 > 0.8 {
		t.Fatalf("rate at 50ms = %v", r50)
	}
	if r200 < 0.88 {
		t.Fatalf("rate at 200ms = %v", r200)
	}
	// Degenerate: press longer than cycle → zero capture.
	r, err := ExpectedGestureCaptureRate(p, 10*time.Millisecond, time.Second)
	if err != nil || r != 0 {
		t.Fatalf("degenerate rate = (%v,%v), want 0", r, err)
	}
	if _, err := ExpectedGestureCaptureRate(p, 0, press); err == nil {
		t.Fatal("zero D accepted")
	}
	if _, err := ExpectedGestureCaptureRate(p, time.Second, -time.Second); err == nil {
		t.Fatal("negative press accepted")
	}
}

func TestAttackPeriod(t *testing.T) {
	got, err := AttackPeriod(300*time.Millisecond, 8)
	if err != nil || got != 2400*time.Millisecond {
		t.Fatalf("AttackPeriod = (%v,%v), want 2.4s", got, err)
	}
	if _, err := AttackPeriod(0, 8); err == nil {
		t.Fatal("zero per-key accepted")
	}
	if _, err := AttackPeriod(time.Second, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestMistouchBudget(t *testing.T) {
	p := device.Default()
	got, err := MistouchBudget(p, 10*time.Second, 200*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("MistouchBudget: %v", err)
	}
	if got <= 0 || got > 3 {
		t.Fatalf("budget = %v lost keystrokes, want small positive", got)
	}
	if _, err := MistouchBudget(p, 10*time.Second, 200*time.Millisecond, 0); err == nil {
		t.Fatal("zero per-key accepted")
	}
}

// TestPredictTableII: the analytical Equation (3) bound must sit at the
// paper's value plus the documented 10 ms calibration headroom.
func TestPredictTableII(t *testing.T) {
	rows := PredictTableII()
	if len(rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(rows))
	}
	for _, r := range rows {
		diff := r.Analytical - (r.Paper + 10*time.Millisecond)
		if diff < 0 {
			diff = -diff
		}
		if diff > 10*time.Millisecond {
			t.Errorf("%s: analytical %v vs paper %v", r.Model, r.Analytical, r.Paper)
		}
	}
}

// TestUpperBoundDOrdering: Equation (3) reproduces the version ordering —
// Android 10 devices enjoy larger bounds than comparable Android 8 ones
// thanks to the ANA delay.
func TestUpperBoundDOrdering(t *testing.T) {
	mean := func(major int) time.Duration {
		ps := device.ByVersion(major)
		var sum time.Duration
		for _, p := range ps {
			sum += UpperBoundD(p)
		}
		return sum / time.Duration(len(ps))
	}
	if m10, m8 := mean(10), mean(8); m10 <= m8 {
		t.Fatalf("Equation (3): Android 10 mean bound %v ≤ Android 8 %v", m10, m8)
	}
}
