package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4).Add(Pt(1, -2))
	if p != Pt(4, 2) {
		t.Fatalf("Add = %v, want (4,2)", p)
	}
	q := Pt(3, 4).Sub(Pt(1, 1))
	if q != Pt(2, 3) {
		t.Fatalf("Sub = %v, want (2,3)", q)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, 0), Pt(1, 0), 2},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestRectWH(t *testing.T) {
	r := RectWH(10, 20, 100, 50)
	if r.W() != 100 || r.H() != 50 {
		t.Fatalf("W,H = %v,%v, want 100,50", r.W(), r.H())
	}
	if r.Area() != 5000 {
		t.Fatalf("Area = %v, want 5000", r.Area())
	}
	if got := r.Center(); got != Pt(60, 45) {
		t.Fatalf("Center = %v, want (60,45)", got)
	}
}

func TestContainsEdges(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},    // top-left inclusive
		{Pt(10, 10), false}, // bottom-right exclusive
		{Pt(9.999, 9.999), true},
		{Pt(5, 5), true},
		{Pt(-0.001, 5), false},
		{Pt(5, 10), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestEmpty(t *testing.T) {
	if RectWH(0, 0, 10, 10).Empty() {
		t.Fatal("non-degenerate rect reported Empty")
	}
	if !RectWH(0, 0, 0, 10).Empty() {
		t.Fatal("zero-width rect not Empty")
	}
	if !(Rect{Min: Pt(5, 5), Max: Pt(1, 1)}).Empty() {
		t.Fatal("inverted rect not Empty")
	}
}

func TestIntersection(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	if !a.Intersects(b) {
		t.Fatal("overlapping rects reported disjoint")
	}
	got := a.Intersect(b)
	want := RectWH(5, 5, 5, 5)
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := RectWH(20, 20, 5, 5)
	if a.Intersects(c) {
		t.Fatal("disjoint rects reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("Intersect of disjoint rects not empty")
	}
	// Touching edges do not intersect.
	d := RectWH(10, 0, 5, 10)
	if a.Intersects(d) {
		t.Fatal("edge-touching rects reported intersecting")
	}
}

func TestUnion(t *testing.T) {
	a := RectWH(0, 0, 5, 5)
	b := RectWH(10, 10, 5, 5)
	got := a.Union(b)
	want := RectWH(0, 0, 15, 15)
	if got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
}

func TestTranslateAndInset(t *testing.T) {
	r := RectWH(0, 0, 10, 10).Translate(Pt(5, 5))
	if r != RectWH(5, 5, 10, 10) {
		t.Fatalf("Translate = %v", r)
	}
	in := RectWH(0, 0, 10, 10).Inset(2)
	if in != RectWH(2, 2, 6, 6) {
		t.Fatalf("Inset = %v, want [2,2 6x6]", in)
	}
	if !RectWH(0, 0, 10, 10).Inset(6).Empty() {
		t.Fatal("over-inset rect not empty")
	}
}

func TestCovers(t *testing.T) {
	outer := RectWH(0, 0, 100, 100)
	if !outer.Covers(RectWH(10, 10, 20, 20)) {
		t.Fatal("outer does not cover strict subset")
	}
	if !outer.Covers(outer) {
		t.Fatal("rect does not cover itself")
	}
	if outer.Covers(RectWH(90, 90, 20, 20)) {
		t.Fatal("outer covers overflowing rect")
	}
	if !outer.Covers(Rect{}) {
		t.Fatal("rect does not cover empty rect")
	}
}

func TestDensity(t *testing.T) {
	d := Density{DPI: 320}
	if got := d.PxPerDP(); got != 2 {
		t.Fatalf("PxPerDP = %v, want 2", got)
	}
	if got := d.ToPx(10); got != 20 {
		t.Fatalf("ToPx(10) = %v, want 20", got)
	}
	if got := d.ToDP(20); got != 10 {
		t.Fatalf("ToDP(20) = %v, want 10", got)
	}
	var zero Density
	if got := zero.PxPerDP(); got != 1 {
		t.Fatalf("zero-density PxPerDP = %v, want 1", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestPropertyIntersect(t *testing.T) {
	prop := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectWH(float64(ax), float64(ay), float64(aw), float64(ah))
		b := RectWH(float64(bx), float64(by), float64(bw), float64(bh))
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Empty() {
			return true
		}
		return a.Covers(ab) && b.Covers(ab)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union covers both operands.
func TestPropertyUnionCovers(t *testing.T) {
	prop := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectWH(float64(ax), float64(ay), float64(aw)+1, float64(ah)+1)
		b := RectWH(float64(bx), float64(by), float64(bw)+1, float64(bh)+1)
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a point inside the intersection is inside both rects.
func TestPropertyContainsIntersection(t *testing.T) {
	prop := func(ax, ay, bx, by uint8, px, py uint8) bool {
		a := RectWH(float64(ax), float64(ay), 50, 50)
		b := RectWH(float64(bx), float64(by), 50, 50)
		p := Pt(float64(px), float64(py))
		in := a.Intersect(b)
		if in.Contains(p) {
			return a.Contains(p) && b.Contains(p)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
