// Package geom provides the 2-D primitives used by the simulated Android
// UI: points, rectangles, hit testing and density-independent-pixel
// conversion. Coordinates follow Android's convention — the origin is the
// top-left corner of the screen, x grows right and y grows down.
package geom

import (
	"fmt"
	"math"
)

// Point is a screen position in pixels.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Dist reports the Euclidean distance between p and q. The password
// inference step of the attack (Section V) picks the key whose center
// minimizes this distance.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// String renders the point for diagnostics.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the top-left corner and Max the
// bottom-right; a Rect is well-formed when Min.X <= Max.X and
// Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// RectWH builds a rectangle from a top-left corner and a width/height.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Min: Pt(x, y), Max: Pt(x+w, y+h)}
}

// W reports the rectangle width.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H reports the rectangle height.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area reports the rectangle area; zero or negative for degenerate rects.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle encloses no area.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Center reports the rectangle's center point.
func (r Rect) Center() Point {
	return Pt((r.Min.X+r.Max.X)/2, (r.Min.Y+r.Max.Y)/2)
}

// Contains reports whether p lies inside r. Android treats the top and left
// edges as inside and the bottom and right edges as outside, matching pixel
// hit-testing.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X && r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Intersect returns the overlapping region of r and s; the result is Empty
// when they do not intersect.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Min: Pt(math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)),
		Max: Pt(math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. The union
// with an empty rectangle is the other rectangle.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Min: Pt(math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)),
		Max: Pt(math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)),
	}
}

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Min: r.Min.Add(d), Max: r.Max.Add(d)}
}

// Inset returns r shrunk by m on every side. Insetting past the center
// yields an empty rectangle.
func (r Rect) Inset(m float64) Rect {
	out := Rect{Min: Pt(r.Min.X+m, r.Min.Y+m), Max: Pt(r.Max.X-m, r.Max.Y-m)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Covers reports whether r fully contains s.
func (r Rect) Covers(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Min.X <= s.Min.X && r.Min.Y <= s.Min.Y && r.Max.X >= s.Max.X && r.Max.Y >= s.Max.Y
}

// String renders the rect for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.Min.X, r.Min.Y, r.W(), r.H())
}

// Density converts between density-independent pixels (dp) and physical
// pixels for a screen. Android UI specs are given in dp; window geometry on
// a particular phone is in pixels.
type Density struct {
	// DPI is the screen density in dots per inch; mdpi (160) is the 1:1
	// baseline.
	DPI float64
}

// PxPerDP reports the pixel-per-dp scale factor.
func (d Density) PxPerDP() float64 {
	if d.DPI <= 0 {
		return 1
	}
	return d.DPI / 160
}

// ToPx converts dp to pixels.
func (d Density) ToPx(dp float64) float64 { return dp * d.PxPerDP() }

// ToDP converts pixels to dp.
func (d Density) ToDP(px float64) float64 { return px / d.PxPerDP() }
