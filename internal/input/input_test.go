package input

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/keyboard"
	"repro/internal/simrand"
)

func newKB(t *testing.T) *keyboard.Keyboard {
	t.Helper()
	kb, err := keyboard.New(geom.RectWH(0, 1200, 1080, 720))
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	return kb
}

func TestNewTypistValidation(t *testing.T) {
	if _, err := NewTypist(nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestTypistParametersInPopulationRange(t *testing.T) {
	rng := simrand.New(1)
	for i := 0; i < 50; i++ {
		ty, err := NewTypist(rng.DeriveIndexed("t", i))
		if err != nil {
			t.Fatalf("NewTypist: %v", err)
		}
		if m := ty.InterKey.Mean; m < 240 || m > 330 {
			t.Fatalf("cadence mean %v out of population range", m)
		}
		if m := ty.Press.Mean; m < 11 || m > 17 {
			t.Fatalf("press mean %v out of population range", m)
		}
		if ty.ScatterPx < 14 || ty.ScatterPx > 20 {
			t.Fatalf("scatter %v out of population range", ty.ScatterPx)
		}
	}
}

func TestPlanSessionTimesMonotone(t *testing.T) {
	kb := newKB(t)
	ty, err := NewTypist(simrand.New(7))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	ks, err := ty.PlanSession(kb, "hello", 100*time.Millisecond)
	if err != nil {
		t.Fatalf("PlanSession: %v", err)
	}
	if len(ks) != 5 {
		t.Fatalf("keystrokes = %d, want 5", len(ks))
	}
	prev := 100 * time.Millisecond
	for i, k := range ks {
		if k.DownAt <= prev {
			t.Fatalf("keystroke %d DownAt %v not after %v", i, k.DownAt, prev)
		}
		if k.UpAt <= k.DownAt {
			t.Fatalf("keystroke %d UpAt %v not after DownAt %v", i, k.UpAt, k.DownAt)
		}
		if k.UpAt-k.DownAt > 40*time.Millisecond {
			t.Fatalf("press window %v exceeds max", k.UpAt-k.DownAt)
		}
		prev = k.UpAt
	}
}

func TestPlanSessionIncludesTransitions(t *testing.T) {
	kb := newKB(t)
	ty, err := NewTypist(simrand.New(7))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	ks, err := ty.PlanSession(kb, "aB", 0)
	if err != nil {
		t.Fatalf("PlanSession: %v", err)
	}
	// a, shift, B.
	if len(ks) != 3 {
		t.Fatalf("keystrokes = %d, want 3", len(ks))
	}
	if ks[1].Press.Key.Kind != keyboard.KindShift {
		t.Fatalf("keystroke 1 = %+v, want shift", ks[1].Press.Key)
	}
}

func TestPlanSessionUntypeable(t *testing.T) {
	kb := newKB(t)
	ty, err := NewTypist(simrand.New(7))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	if _, err := ty.PlanSession(kb, "ü", 0); err == nil {
		t.Fatal("untypeable text accepted")
	}
}

// TestMisspellInjection: with MisspellProb forced to 1, every character
// press becomes a wrong-key + backspace + correct triplet, and the triplet
// still decodes to the intended text via the attacker's decoder.
func TestMisspellInjection(t *testing.T) {
	kb := newKB(t)
	ty, err := NewTypist(simrand.New(43))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	ty.MisspellProb = 1
	ks, err := ty.PlanSession(kb, "ab", 0)
	if err != nil {
		t.Fatalf("PlanSession: %v", err)
	}
	// Each of the 2 chars → wrong, backspace, correct.
	if len(ks) != 6 {
		t.Fatalf("keystrokes = %d, want 6", len(ks))
	}
	if ks[1].Press.Key.Kind != keyboard.KindBackspace {
		t.Fatalf("keystroke 1 = %v, want backspace", ks[1].Press.Key.Kind)
	}
	dec := keyboard.NewDecoder(kb)
	for _, k := range ks {
		dec.Observe(k.Press.Key.Center())
	}
	if got := dec.Password(); got != "ab" {
		t.Fatalf("decoded %q, want ab (correction transparent to the attack)", got)
	}
}

func TestMisspellProbInPopulationRange(t *testing.T) {
	rng := simrand.New(47)
	for i := 0; i < 30; i++ {
		ty, err := NewTypist(rng.DeriveIndexed("m", i))
		if err != nil {
			t.Fatalf("NewTypist: %v", err)
		}
		if ty.MisspellProb < 0.001 || ty.MisspellProb > 0.009 {
			t.Fatalf("MisspellProb = %v out of range", ty.MisspellProb)
		}
	}
}

func TestScatterIsCentered(t *testing.T) {
	ty, err := NewTypist(simrand.New(11))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	center := geom.Pt(500, 1500)
	var sumX, sumY float64
	const n = 5000
	for i := 0; i < n; i++ {
		p := ty.Scatter(center)
		sumX += p.X - center.X
		sumY += p.Y - center.Y
	}
	if meanX := sumX / n; meanX < -2 || meanX > 2 {
		t.Fatalf("scatter bias X = %v", meanX)
	}
	if meanY := sumY / n; meanY < -2 || meanY > 2 {
		t.Fatalf("scatter bias Y = %v", meanY)
	}
}

// TestScatterWrongKeyRateCalibration: the per-keystroke nearest-key
// misclassification rate must land in the band implied by Table III
// (roughly 0.2%–1.5%).
func TestScatterWrongKeyRateCalibration(t *testing.T) {
	kb := newKB(t)
	rng := simrand.New(13)
	wrong, total := 0, 0
	keys := kb.Keys(keyboard.BoardLower)
	for i := 0; i < 40; i++ {
		ty, err := NewTypist(rng.DeriveIndexed("u", i))
		if err != nil {
			t.Fatalf("NewTypist: %v", err)
		}
		for _, key := range keys {
			if key.Kind != keyboard.KindChar {
				continue
			}
			for j := 0; j < 40; j++ {
				p := ty.Scatter(key.Center())
				got := kb.NearestKey(keyboard.BoardLower, p)
				if got.Label != key.Label {
					wrong++
				}
				total++
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if rate < 0.001 || rate > 0.02 {
		t.Fatalf("wrong-key rate = %.4f, want within [0.001, 0.02] (Table III band)", rate)
	}
}

func TestRandomPasswordProperties(t *testing.T) {
	rng := simrand.New(17)
	kb := newKB(t)
	for _, length := range []int{4, 6, 8, 10, 12} {
		pw := RandomPassword(rng, length)
		if len(pw) != length {
			t.Fatalf("password %q length %d, want %d", pw, len(pw), length)
		}
		// Every generated password must be typeable on the layout.
		if _, err := kb.PlanPresses(pw); err != nil {
			t.Fatalf("password %q not typeable: %v", pw, err)
		}
	}
}

func TestRandomPasswordSpansBoards(t *testing.T) {
	rng := simrand.New(19)
	sawUpper, sawSymbol := false, false
	for i := 0; i < 50; i++ {
		pw := RandomPassword(rng, 12)
		if strings.ContainsAny(pw, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			sawUpper = true
		}
		if strings.ContainsAny(pw, "@#$%&-+()/*\"':;!?0123456789") {
			sawSymbol = true
		}
	}
	if !sawUpper || !sawSymbol {
		t.Fatalf("passwords never spanned sub-keyboards (upper=%v symbols=%v)", sawUpper, sawSymbol)
	}
}

func TestRandomString(t *testing.T) {
	rng := simrand.New(23)
	s := RandomString(rng, 10)
	if len(s) != 10 {
		t.Fatalf("length = %d, want 10", len(s))
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			t.Fatalf("string %q contains non-lowercase %q", s, r)
		}
	}
}

func TestParticipants(t *testing.T) {
	rng := simrand.New(29)
	ps, err := Participants(rng, 30)
	if err != nil {
		t.Fatalf("Participants: %v", err)
	}
	if len(ps) != 30 {
		t.Fatalf("participants = %d, want 30", len(ps))
	}
	// Participants differ (independent draws).
	same := 0
	for i := 1; i < len(ps); i++ {
		if ps[i].ScatterPx == ps[0].ScatterPx {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d participants share scatter with participant 0; draws not independent", same)
	}
	if _, err := Participants(rng, 0); err == nil {
		t.Fatal("zero participants accepted")
	}
}

func TestMeanCadence(t *testing.T) {
	ty, err := NewTypist(simrand.New(31))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	mc := ty.MeanCadence()
	if mc < 240*time.Millisecond || mc > 330*time.Millisecond {
		t.Fatalf("MeanCadence = %v, want within population range", mc)
	}
}
