// Package input models the human side of the paper's user studies: a
// stochastic typist with an inter-keystroke cadence, a dispatch-critical
// press window, and spatial touch scatter around key centers. Thirty
// Typist instances with per-participant parameter draws stand in for the
// paper's thirty recruited participants.
//
// Calibration note (documented in DESIGN.md): the "press window" is the
// portion of a tap during which removing the target window causes the
// dispatched event to be lost. It is calibrated to ≈14 ms so that the
// simulated touch-event capture rate reproduces the shape of the paper's
// Fig. 7 (≈61% at D = 50 ms rising to ≈93% at 200 ms). Touch scatter is
// calibrated to σ ≈ 17 px on a ~108 px key grid, which yields the sub-1%
// per-keystroke wrong-key rate implied by Table III.
package input

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/keyboard"
	"repro/internal/simrand"
)

// Typist is one simulated participant.
type Typist struct {
	rng *simrand.Source
	// InterKey is the delay between consecutive key presses (ms).
	InterKey simrand.Dist
	// Press is the dispatch-critical press window (ms).
	Press simrand.Dist
	// ScatterPx is the standard deviation of the touch point around the
	// intended key center, in pixels.
	ScatterPx float64
	// MisspellProb is the per-character probability that the participant
	// types a neighboring key by mistake, notices, backspaces and
	// retypes — the "misspelling by a user" the paper lists as an error
	// source. The corrected sequence is transparent to the attack if all
	// three extra presses are captured; a missed backspace leaves the
	// attacker with an over-long derivation.
	MisspellProb float64
}

// NewTypist draws a participant from the population distribution: cadence
// mean ~240–330 ms, press window mean ~11–17 ms, scatter σ ~14–20 px.
func NewTypist(rng *simrand.Source) (*Typist, error) {
	if rng == nil {
		return nil, errors.New("input: nil rng")
	}
	cadence := rng.TruncNormal(285, 30, 240, 330)
	press := rng.TruncNormal(14, 2, 11, 17)
	scatter := rng.TruncNormal(17, 2, 14, 20)
	misspell := rng.TruncNormal(0.004, 0.002, 0.001, 0.009)
	return &Typist{
		rng:          rng,
		InterKey:     simrand.Dist{Kind: simrand.DistNormal, Mean: cadence, Jitter: 60, Min: 120, Max: 600},
		Press:        simrand.Dist{Kind: simrand.DistNormal, Mean: press, Jitter: 6, Min: 4, Max: 40},
		ScatterPx:    scatter,
		MisspellProb: misspell,
	}, nil
}

// WithStream returns a copy of the typist whose planning randomness comes
// from rng; the participant's drawn parameters (cadence, press window,
// scatter, misspell rate) are kept. Journaled runners give every trial its
// own derived stream so that replaying a finished trial from the journal
// leaves the randomness of the remaining trials untouched.
func (t *Typist) WithStream(rng *simrand.Source) (*Typist, error) {
	if rng == nil {
		return nil, errors.New("input: nil rng")
	}
	c := *t
	c.rng = rng
	return &c, nil
}

// MeanCadence reports the typist's average inter-keystroke delay; the
// attacker sizes the total attacking period T = S × L from it.
func (t *Typist) MeanCadence() time.Duration { return t.InterKey.MeanDuration() }

// Scatter displaces an intended touch point by the typist's spatial error.
func (t *Typist) Scatter(p geom.Point) geom.Point {
	return geom.Pt(
		t.rng.Normal(p.X, t.ScatterPx),
		t.rng.Normal(p.Y, t.ScatterPx),
	)
}

// Keystroke is one scheduled tap of a typing session.
type Keystroke struct {
	// Press is the planned key (ground truth).
	Press keyboard.Press
	// Point is where the finger actually lands (scattered).
	Point geom.Point
	// DownAt and UpAt are the gesture's virtual times.
	DownAt, UpAt time.Duration
}

// PlanSession expands text into a timed, scattered keystroke sequence on
// kb, starting at start. The plan includes the sub-keyboard transition
// presses (shift, ?123, ABC) a real user performs, and — with the
// typist's misspell probability — occasional fat-finger/backspace/retype
// triplets.
func (t *Typist) PlanSession(kb *keyboard.Keyboard, text string, start time.Duration) ([]Keystroke, error) {
	presses, err := kb.PlanPresses(text)
	if err != nil {
		return nil, fmt.Errorf("input: plan session: %w", err)
	}
	now := start
	out := make([]Keystroke, 0, len(presses))
	appendPress := func(pr keyboard.Press) {
		now += t.InterKey.Sample(t.rng)
		down := now
		up := down + t.Press.Sample(t.rng)
		out = append(out, Keystroke{
			Press:  pr,
			Point:  t.Scatter(pr.Key.Center()),
			DownAt: down,
			UpAt:   up,
		})
	}
	for _, pr := range presses {
		if pr.Key.Kind == keyboard.KindChar && t.rng.Bool(t.MisspellProb) {
			if wrong, ok := kb.NeighborKey(pr.Board, pr.Key); ok {
				if bs, ok := kb.FindKey(pr.Board, "⌫"); ok {
					appendPress(keyboard.Press{Board: pr.Board, Key: wrong})
					appendPress(keyboard.Press{Board: pr.Board, Key: bs})
				}
			}
		}
		appendPress(pr)
	}
	return out, nil
}

// passwordCharset spans the paper's password alphabet: lower case, upper
// case, digits and special symbols living on all three sub-keyboards.
const passwordCharset = "abcdefghijklmnopqrstuvwxyz" +
	"ABCDEFGHIJKLMNOPQRSTUVWXYZ" +
	"0123456789" +
	"@#$%&-+()/*\"':;!?"

// RandomPassword draws a password of the given length that may contain
// lower and upper case letters, numbers and special symbols on different
// sub-keyboards (Section VI-C1).
func RandomPassword(rng *simrand.Source, length int) string {
	var sb strings.Builder
	sb.Grow(length)
	for i := 0; i < length; i++ {
		sb.WriteByte(passwordCharset[rng.Intn(len(passwordCharset))])
	}
	return sb.String()
}

// lowerCharset is the alphabet of the Fig. 7 capture-rate experiment's
// random strings (single-board text: no transitions needed).
const lowerCharset = "abcdefghijklmnopqrstuvwxyz"

// RandomString draws a random lower-case string of the given length for
// the touch-capture experiment.
func RandomString(rng *simrand.Source, length int) string {
	var sb strings.Builder
	sb.Grow(length)
	for i := 0; i < length; i++ {
		sb.WriteByte(lowerCharset[rng.Intn(len(lowerCharset))])
	}
	return sb.String()
}

// Participants builds n typists with independent per-participant streams
// derived from rng.
func Participants(rng *simrand.Source, n int) ([]*Typist, error) {
	if n <= 0 {
		return nil, fmt.Errorf("input: non-positive participant count %d", n)
	}
	out := make([]*Typist, 0, n)
	for i := 0; i < n; i++ {
		typist, err := NewTypist(rng.DeriveIndexed("participant", i))
		if err != nil {
			return nil, err
		}
		out = append(out, typist)
	}
	return out, nil
}
