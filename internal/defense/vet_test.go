package defense

import (
	"strings"
	"testing"

	"repro/internal/appstore"
	"repro/internal/dexir"
	"repro/internal/simrand"
	"repro/internal/staticanalysis"
)

func genOne(t *testing.T, seed int64, rates appstore.Rates) appstore.APK {
	t.Helper()
	gen, err := appstore.NewGenerator(simrand.New(seed), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return gen.Next()
}

func TestVetDeniesAttackApp(t *testing.T) {
	apk := genOne(t, 1, appstore.Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1, A11yAttackGivenCapable: 1, CustomToast: 1, ToastReplaceGivenToast: 1})
	v, err := Vet(apk.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if v.Allow {
		t.Fatal("full attack app allowed")
	}
	caps := v.Capabilities()
	if len(caps) != 3 {
		t.Fatalf("capabilities = %v, want all three", caps)
	}
	s := v.String()
	for _, want := range []string{"DENY", "draw-and-destroy", "toast-replace", "a11y-timing", "⇒"} {
		if !strings.Contains(s, want) {
			t.Errorf("verdict rendering missing %q:\n%s", want, s)
		}
	}
}

func TestVetAllowsBenignApp(t *testing.T) {
	apk := genOne(t, 2, appstore.Rates{})
	v, err := Vet(apk.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if !v.Allow {
		t.Fatalf("benign app denied: %s", v)
	}
	if !strings.Contains(v.String(), "ALLOW") {
		t.Errorf("verdict rendering = %q", v.String())
	}
}

// TestVetAllowsDeadCodeDecoy: the vetting pass must not block apps whose
// only overlay refs are unreachable (where a grep-based vetter would).
func TestVetAllowsDeadCodeDecoy(t *testing.T) {
	apk := genOne(t, 3, appstore.Rates{SAW: 1, DeadOverlayGivenSAW: 1})
	v, err := Vet(apk.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if !v.Allow {
		t.Fatalf("dead-code decoy denied: %s", v)
	}
}

// TestVetDeniesReflectiveAttack: reflective dispatch does not evade the
// vetting pass.
func TestVetDeniesReflectiveAttack(t *testing.T) {
	apk := genOne(t, 4, appstore.Rates{SAW: 1, AddRemoveGivenSAW: 1, ReflectionGivenCapable: 1})
	v, err := Vet(apk.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if v.Allow {
		t.Fatal("reflective attack app allowed")
	}
}

func TestVetNilApp(t *testing.T) {
	if _, err := Vet(nil); err == nil {
		t.Fatal("nil app accepted")
	}
}

// TestVetterCustomSuite: a vetter restricted to one detector only flags
// that capability.
func TestVetterCustomSuite(t *testing.T) {
	vetter := NewVetter(staticanalysis.ToastReplaceDetector{})
	overlayOnly := genOne(t, 5, appstore.Rates{SAW: 1, AddRemoveGivenSAW: 1})
	v, err := vetter.Vet(overlayOnly.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if !v.Allow {
		t.Fatal("toast-only vetter denied an overlay app")
	}
	toastLoop := genOne(t, 6, appstore.Rates{CustomToast: 1, ToastReplaceGivenToast: 1})
	v, err = vetter.Vet(toastLoop.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if v.Allow {
		t.Fatal("toast-only vetter allowed a toast loop")
	}
}

// TestVetVerdictComponentsNamed: evidence names the component kind so the
// market operator can locate the offending code.
func TestVetVerdictComponentsNamed(t *testing.T) {
	apk := genOne(t, 7, appstore.Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1, A11yAttackGivenCapable: 1})
	v, err := Vet(apk.IR)
	if err != nil {
		t.Fatalf("Vet: %v", err)
	}
	if v.Allow {
		t.Fatal("attack app allowed")
	}
	s := v.String()
	if !strings.Contains(s, "accessibility-service") || !strings.Contains(s, "activity") {
		t.Errorf("verdict lacks component kinds:\n%s", s)
	}
	var a11y dexir.ComponentKind = dexir.AccessibilityService
	var found bool
	for _, f := range v.Findings {
		if f.Kind == a11y {
			found = true
		}
	}
	if !found {
		t.Error("no finding attributed to the accessibility service")
	}
}
