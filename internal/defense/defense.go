// Package defense implements the paper's Section VII mitigations.
//
// The IPC-based detector observes Binder transactions (method, caller,
// timestamp) the way the paper's modified Binder driver does, and applies
// the decision rule of Section VII-A: an app whose recent window contains
// many addView/removeView calls with short, regular gaps between a
// removeView and the next addView is running a draw-and-destroy attack.
// On detection the response hook can terminate the attack, e.g. by
// revoking SYSTEM_ALERT_WINDOW.
//
// The enhanced-notification defense of Section VII-B lives in the System
// Server (sysserver.Server.EnableEnhancedNotificationDefense); this
// package provides its evaluation helpers.
package defense

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/sysserver"
)

// IPCDetectorConfig tunes the Section VII-A decision rule.
type IPCDetectorConfig struct {
	// Window is the sliding observation window. Defaults to 3 s.
	Window time.Duration
	// MinCalls is the minimum number of addView+removeView deliveries
	// within the window to consider an app suspicious. Defaults to 8
	// (four draw-and-destroy swaps).
	MinCalls int
	// MaxSwapGap is the maximum delivery gap between an addView and a
	// removeView (in either order — the paper observes the add delivered
	// first even though it is issued second) for the pair to count as a
	// draw-and-destroy swap. Defaults to 50 ms — far above the
	// millisecond-scale swap signature, orders of magnitude below any
	// legitimate overlay usage.
	MaxSwapGap time.Duration
	// MinSwaps is the minimum number of qualifying swaps within the
	// window. Defaults to 4.
	MinSwaps int
	// OnDetect fires once per app on first detection; optional.
	OnDetect func(app binder.ProcessID, d Detection)
	// Ignore lists processes exempt from analysis (system components).
	Ignore []binder.ProcessID
}

// Detection describes a positive finding.
type Detection struct {
	// App is the flagged caller.
	App binder.ProcessID
	// At is the detection (virtual) time.
	At time.Duration
	// Calls is the addView/removeView delivery count in the window.
	Calls int
	// Swaps is the qualifying remove→add pair count in the window.
	Swaps int
	// MeanSwapGap is the mean remove→add gap over those pairs.
	MeanSwapGap time.Duration
}

// callRecord is one observed transaction of interest.
type callRecord struct {
	method string
	at     time.Duration
}

// appWindow holds an app's recent transactions of interest.
type appWindow struct {
	calls []callRecord
}

// IPCDetector is the Section VII-A detector. Install its Observe method on
// the Binder bus.
type IPCDetector struct {
	cfg        IPCDetectorConfig
	apps       map[binder.ProcessID]*appWindow
	detections map[binder.ProcessID]Detection
	ignore     map[binder.ProcessID]bool
	observed   uint64
}

// NewIPCDetector validates the configuration and builds a detector.
func NewIPCDetector(cfg IPCDetectorConfig) (*IPCDetector, error) {
	if cfg.Window == 0 {
		cfg.Window = 3 * time.Second
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("defense: negative window %v", cfg.Window)
	}
	if cfg.MinCalls == 0 {
		cfg.MinCalls = 8
	}
	if cfg.MinCalls < 2 {
		return nil, fmt.Errorf("defense: MinCalls %d too small", cfg.MinCalls)
	}
	if cfg.MaxSwapGap == 0 {
		cfg.MaxSwapGap = 50 * time.Millisecond
	}
	if cfg.MaxSwapGap < 0 {
		return nil, fmt.Errorf("defense: negative MaxSwapGap %v", cfg.MaxSwapGap)
	}
	if cfg.MinSwaps == 0 {
		cfg.MinSwaps = 4
	}
	if cfg.MinSwaps < 1 {
		return nil, fmt.Errorf("defense: MinSwaps %d too small", cfg.MinSwaps)
	}
	det := &IPCDetector{
		cfg:        cfg,
		apps:       make(map[binder.ProcessID]*appWindow),
		detections: make(map[binder.ProcessID]Detection),
		ignore:     make(map[binder.ProcessID]bool, len(cfg.Ignore)),
	}
	for _, id := range cfg.Ignore {
		det.ignore[id] = true
	}
	return det, nil
}

// Observe consumes one delivered Binder transaction; install it with
// bus.Observe(det.Observe).
func (d *IPCDetector) Observe(tx binder.Transaction) {
	if tx.Method != sysserver.MethodAddView && tx.Method != sysserver.MethodRemoveView {
		return
	}
	if d.ignore[tx.From] {
		return
	}
	d.observed++
	w := d.apps[tx.From]
	if w == nil {
		w = &appWindow{}
		d.apps[tx.From] = w
	}
	w.calls = append(w.calls, callRecord{method: tx.Method, at: tx.DeliveredAt})
	// Trim entries older than the window.
	cutoff := tx.DeliveredAt - d.cfg.Window
	i := 0
	for i < len(w.calls) && w.calls[i].at < cutoff {
		i++
	}
	if i > 0 {
		w.calls = append(w.calls[:0], w.calls[i:]...)
	}
	d.evaluate(tx.From, w, tx.DeliveredAt)
}

func (d *IPCDetector) evaluate(app binder.ProcessID, w *appWindow, now time.Duration) {
	if _, already := d.detections[app]; already {
		return
	}
	if len(w.calls) < d.cfg.MinCalls {
		return
	}
	swaps := 0
	var gapSum time.Duration
	for i := 0; i+1 < len(w.calls); i++ {
		next := w.calls[i+1]
		// A swap is an add/remove pair (either delivery order) with a
		// millisecond-scale gap.
		if w.calls[i].method == next.method {
			continue
		}
		if gap := next.at - w.calls[i].at; gap <= d.cfg.MaxSwapGap {
			swaps++
			gapSum += gap
		}
	}
	if swaps < d.cfg.MinSwaps {
		return
	}
	det := Detection{
		App:         app,
		At:          now,
		Calls:       len(w.calls),
		Swaps:       swaps,
		MeanSwapGap: gapSum / time.Duration(swaps),
	}
	d.detections[app] = det
	if d.cfg.OnDetect != nil {
		d.cfg.OnDetect(app, det)
	}
}

// Detections returns all positive findings so far, ordered by detection
// time then app so repeated runs render identically.
func (d *IPCDetector) Detections() []Detection {
	out := make([]Detection, 0, len(d.detections))
	for _, det := range d.detections {
		out = append(out, det)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].App < out[j].App
	})
	return out
}

// Detected reports whether the app has been flagged.
func (d *IPCDetector) Detected(app binder.ProcessID) bool {
	_, ok := d.detections[app]
	return ok
}

// Observed reports how many transactions of interest were analyzed (the
// defense's work volume, for the overhead evaluation).
func (d *IPCDetector) Observed() uint64 { return d.observed }

// Install wires the detector into a stack: it observes the stack's Binder
// bus and, if terminate is true, revokes SYSTEM_ALERT_WINDOW from detected
// apps (which also removes their attached overlays).
func (d *IPCDetector) Install(stack *sysserver.Stack, terminate bool) error {
	if stack == nil {
		return errors.New("defense: nil stack")
	}
	if terminate {
		userHook := d.cfg.OnDetect
		d.cfg.OnDetect = func(app binder.ProcessID, det Detection) {
			stack.WM.RevokeOverlayPermission(app)
			if userHook != nil {
				userHook(app, det)
			}
		}
	}
	stack.Bus.Observe(d.Observe)
	return nil
}
