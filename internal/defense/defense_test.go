package defense

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/keyboard"
	"repro/internal/simclock"
	"repro/internal/sysserver"
	"repro/internal/sysui"
	"repro/internal/uikit"
	"repro/internal/wm"
)

const evilApp binder.ProcessID = "com.evil.app"

func assemble(t *testing.T) *sysserver.Stack {
	t.Helper()
	st, err := sysserver.Assemble(device.Default(), 42)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(evilApp)
	return st
}

func screenOf(st *sysserver.Stack) geom.Rect {
	return geom.RectWH(0, 0, float64(st.Profile.ScreenW), float64(st.Profile.ScreenH))
}

func TestNewIPCDetectorValidation(t *testing.T) {
	if _, err := NewIPCDetector(IPCDetectorConfig{Window: -time.Second}); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := NewIPCDetector(IPCDetectorConfig{MinCalls: 1}); err == nil {
		t.Fatal("MinCalls 1 accepted")
	}
	if _, err := NewIPCDetector(IPCDetectorConfig{MaxSwapGap: -time.Second}); err == nil {
		t.Fatal("negative gap accepted")
	}
	if _, err := NewIPCDetector(IPCDetectorConfig{MinSwaps: -1}); err == nil {
		t.Fatal("negative MinSwaps accepted")
	}
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector defaults: %v", err)
	}
	if det.cfg.Window != 3*time.Second || det.cfg.MinCalls != 8 || det.cfg.MinSwaps != 4 {
		t.Fatalf("defaults = %+v", det.cfg)
	}
}

// TestDetectorFlagsOverlayAttack: the draw-and-destroy overlay attack must
// be detected within a few seconds.
func TestDetectorFlagsOverlayAttack(t *testing.T) {
	st := assemble(t)
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	if err := det.Install(st, false); err != nil {
		t.Fatalf("Install: %v", err)
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App: evilApp, D: 280 * time.Millisecond, Bounds: screenOf(st),
	})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(10*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !det.Detected(evilApp) {
		t.Fatal("attack not detected")
	}
	ds := det.Detections()
	if len(ds) != 1 {
		t.Fatalf("detections = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.App != evilApp {
		t.Fatalf("detected %q", d.App)
	}
	// Detection should come within the first ~3 s of attack.
	if d.At > 4*time.Second {
		t.Fatalf("detection at %v, want within ~4s", d.At)
	}
	if d.Swaps < 4 || d.Calls < 8 {
		t.Fatalf("detection evidence too thin: %+v", d)
	}
	// Observed mean swap gap is the Tmis-scale remove→add distance.
	if d.MeanSwapGap <= 0 || d.MeanSwapGap > 50*time.Millisecond {
		t.Fatalf("mean swap gap = %v", d.MeanSwapGap)
	}
}

// TestDetectorTerminatesAttack: with terminate enabled the detector
// revokes SYSTEM_ALERT_WINDOW; the attack's overlays disappear and stay
// gone.
func TestDetectorTerminatesAttack(t *testing.T) {
	st := assemble(t)
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	if err := det.Install(st, true); err != nil {
		t.Fatalf("Install: %v", err)
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App: evilApp, D: 280 * time.Millisecond, Bounds: screenOf(st),
	})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(20*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(25 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !det.Detected(evilApp) {
		t.Fatal("attack not detected")
	}
	if st.WM.HasOverlayPermission(evilApp) {
		t.Fatal("permission not revoked")
	}
	if st.WM.OverlayCount(evilApp) != 0 {
		t.Fatal("overlays still attached after termination")
	}
}

// TestDetectorIgnoresBenignOverlayApp: a floating-widget app (one overlay,
// added once, removed minutes later) must not be flagged.
func TestDetectorIgnoresBenignOverlayApp(t *testing.T) {
	st := assemble(t)
	const musicApp binder.ProcessID = "com.music.player"
	st.WM.GrantOverlayPermission(musicApp)
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	if err := det.Install(st, false); err != nil {
		t.Fatalf("Install: %v", err)
	}
	add := func(h uint64) {
		if _, err := st.Bus.Call(musicApp, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
			Handle: h, Type: wm.TypeApplicationOverlay, Bounds: geom.RectWH(100, 100, 300, 300),
		}); err != nil {
			t.Errorf("addView: %v", err)
		}
	}
	remove := func(h uint64) {
		if _, err := st.Bus.Call(musicApp, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{Handle: h}); err != nil {
			t.Errorf("removeView: %v", err)
		}
	}
	// The widget toggles a handful of times over a minute — heavy but
	// legitimate usage.
	for i := 0; i < 6; i++ {
		i := i
		st.Clock.MustAfter(time.Duration(i)*10*time.Second, "widget-on", func() { add(uint64(i + 1)) })
		st.Clock.MustAfter(time.Duration(i)*10*time.Second+5*time.Second, "widget-off", func() { remove(uint64(i + 1)) })
	}
	if err := st.Clock.RunFor(90 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if det.Detected(musicApp) {
		t.Fatal("benign overlay app flagged (false positive)")
	}
}

// TestDetectorIgnoresIMEChurn: the input method shows and hides windows on
// every focus change; it must not be flagged even under rapid focus churn.
func TestDetectorIgnoresIMEChurn(t *testing.T) {
	st := assemble(t)
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	if err := det.Install(st, false); err != nil {
		t.Fatalf("Install: %v", err)
	}
	kb, err := keyboard.New(geom.RectWH(0, 1200, 1080, 720))
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	root := uikit.NewView("root", "FrameLayout", screenOf(st))
	act, err := uikit.NewActivity(st.Clock, "com.some.app", root)
	if err != nil {
		t.Fatalf("NewActivity: %v", err)
	}
	// Show/hide the IME every second for 20 s.
	for i := 0; i < 20; i++ {
		i := i
		st.Clock.MustAfter(time.Duration(i)*time.Second, "ime", func() {
			m, err := ime.Show(st, kb, act)
			if err != nil {
				t.Errorf("ime.Show: %v", err)
				return
			}
			st.Clock.MustAfter(500*time.Millisecond, "hide", func() {
				if err := m.Hide(); err != nil {
					t.Errorf("ime.Hide: %v", err)
				}
			})
		})
	}
	if err := st.Clock.RunFor(30 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if det.Detected(ime.Process) {
		t.Fatal("IME flagged (false positive)")
	}
}

// TestEnhancedNotificationDefenseDefeatsAttack is the Section VII-B
// validation: with t = 690 ms the overlay attack can no longer suppress
// the alert on the Pixel 2 — it reaches Λ5.
func TestEnhancedNotificationDefenseDefeatsAttack(t *testing.T) {
	st := assemble(t)
	st.Server.EnableEnhancedNotificationDefense(690 * time.Millisecond)
	d := time.Duration(float64(st.Profile.PaperUpperBoundD) * 0.85)
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{App: evilApp, D: d, Bounds: screenOf(st)})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(10*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.UI.WorstOutcome(); got != sysui.Lambda5 {
		t.Fatalf("WorstOutcome = %v, want Λ5 (defense must defeat suppression)", got)
	}
}

// TestEnhancedDefenseNoFalseAlarm: with the defense on, an honest overlay
// app still gets a correct alert lifecycle (posted while shown, removed
// after).
func TestEnhancedDefenseNoFalseAlarm(t *testing.T) {
	st := assemble(t)
	st.Server.EnableEnhancedNotificationDefense(690 * time.Millisecond)
	const app binder.ProcessID = "com.maps.app"
	st.WM.GrantOverlayPermission(app)
	if _, err := st.Bus.Call(app, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
		Handle: 1, Type: wm.TypeApplicationOverlay, Bounds: geom.RectWH(0, 0, 500, 500),
	}); err != nil {
		t.Fatalf("addView: %v", err)
	}
	st.Clock.MustAfter(5*time.Second, "rm", func() {
		if _, err := st.Bus.Call(app, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{Handle: 1}); err != nil {
			t.Errorf("removeView: %v", err)
		}
	})
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	eps := st.UI.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	if got := eps[0].Classify(); got != sysui.Lambda5 {
		t.Fatalf("honest overlay outcome = %v, want Λ5", got)
	}
	if eps[0].Active {
		t.Fatal("alert never removed after honest overlay removal")
	}
}

func TestDetectorIgnoreList(t *testing.T) {
	clock := simclock.New()
	_ = clock
	det, err := NewIPCDetector(IPCDetectorConfig{Ignore: []binder.ProcessID{"trusted"}})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		det.Observe(binder.Transaction{From: "trusted", To: binder.SystemServer, Method: sysserver.MethodRemoveView, DeliveredAt: at})
		det.Observe(binder.Transaction{From: "trusted", To: binder.SystemServer, Method: sysserver.MethodAddView, DeliveredAt: at + time.Millisecond})
	}
	if det.Detected("trusted") {
		t.Fatal("ignored process flagged")
	}
	if det.Observed() != 0 {
		t.Fatalf("Observed = %d, want 0 for ignored traffic", det.Observed())
	}
}

func TestDetectorDirectObservation(t *testing.T) {
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	// Synthetic attack trace: swaps every 100 ms with 2 ms gaps.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		det.Observe(binder.Transaction{From: "m", To: binder.SystemServer, Method: sysserver.MethodRemoveView, DeliveredAt: at})
		det.Observe(binder.Transaction{From: "m", To: binder.SystemServer, Method: sysserver.MethodAddView, DeliveredAt: at + 2*time.Millisecond})
	}
	if !det.Detected("m") {
		t.Fatal("synthetic attack trace not detected")
	}
	// Unrelated methods are not even observed.
	before := det.Observed()
	det.Observe(binder.Transaction{From: "x", To: binder.SystemServer, Method: "enqueueToast", DeliveredAt: time.Second})
	if det.Observed() != before {
		t.Fatal("toast transaction counted as overlay traffic")
	}
}

func TestInstallNilStack(t *testing.T) {
	det, err := NewIPCDetector(IPCDetectorConfig{})
	if err != nil {
		t.Fatalf("NewIPCDetector: %v", err)
	}
	if err := det.Install(nil, false); err == nil {
		t.Fatal("nil stack accepted")
	}
}
