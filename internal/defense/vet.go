package defense

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dexir"
	"repro/internal/staticanalysis"
)

// This file implements the static half of the Section VII defense: a
// pre-install vetting pass. The runtime Binder monitor (IPCDetector)
// catches draw-and-destroy behavior as it happens; Vet catches the
// *capability* before installation by running the call-graph detectors
// over the app's IR and turning their findings into a scan-before-install
// verdict with per-detector evidence traces.

// VetVerdict is the outcome of statically vetting one app.
type VetVerdict struct {
	// Package is the vetted application id.
	Package string
	// Allow is false when any capability detector fired.
	Allow bool
	// Tier is the static precision tier the verdict was computed at; a
	// verdict is only comparable/cacheable against another at the same
	// tier.
	Tier staticanalysis.Tier
	// Findings carries the per-detector evidence behind a rejection.
	Findings []staticanalysis.Finding
}

// Capabilities lists the distinct capabilities found, in finding order.
func (v VetVerdict) Capabilities() []staticanalysis.Capability {
	seen := make(map[staticanalysis.Capability]bool, 3)
	var out []staticanalysis.Capability
	for _, f := range v.Findings {
		if !seen[f.Capability] {
			seen[f.Capability] = true
			out = append(out, f.Capability)
		}
	}
	return out
}

// String renders the verdict with its evidence traces.
func (v VetVerdict) String() string {
	var sb strings.Builder
	if v.Allow {
		fmt.Fprintf(&sb, "%s: ALLOW (no tapjacking capability found)", v.Package)
		return sb.String()
	}
	fmt.Fprintf(&sb, "%s: DENY", v.Package)
	for _, c := range v.Capabilities() {
		fmt.Fprintf(&sb, " [%s]", c)
	}
	for _, f := range v.Findings {
		fmt.Fprintf(&sb, "\n  %s in %s %s", f.Detector, f.Kind, f.Component)
		for _, e := range f.Evidence {
			fmt.Fprintf(&sb, "\n    %s", e)
		}
	}
	return sb.String()
}

// Vetter runs a detector suite as a pre-install check.
type Vetter struct {
	analyzer *staticanalysis.Analyzer
}

// NewVetter builds a Tier0 vetter; with no arguments it uses the default
// detector suite (draw-and-destroy, toast-replace, a11y-timing).
func NewVetter(detectors ...staticanalysis.Detector) *Vetter {
	return NewVetterTier(staticanalysis.Tier0, detectors...)
}

// NewVetterTier builds a vetter whose static pass runs at the given
// precision tier; with no detectors it uses the default suite.
func NewVetterTier(tier staticanalysis.Tier, detectors ...staticanalysis.Detector) *Vetter {
	return &Vetter{analyzer: staticanalysis.NewAnalyzerTier(tier, detectors...)}
}

// Vet analyzes one app and renders the install verdict.
func (v *Vetter) Vet(app *dexir.App) (VetVerdict, error) {
	if app == nil {
		return VetVerdict{}, errors.New("defense: nil app")
	}
	res := v.analyzer.Analyze(app)
	return VetVerdict{
		Package:  app.Package,
		Allow:    len(res.Findings) == 0,
		Tier:     v.analyzer.Tier(),
		Findings: res.Findings,
	}, nil
}

// Vet runs the default Tier0 vetter over one app — the package-level
// scan-before-install entry point.
func Vet(app *dexir.App) (VetVerdict, error) {
	return NewVetter().Vet(app)
}

// VetTier vets one app with the static pass at the given precision tier.
func VetTier(app *dexir.App, tier staticanalysis.Tier) (VetVerdict, error) {
	return NewVetterTier(tier).Vet(app)
}
