// Package sentrystore is the crash-safe detection journal behind a
// sentryd node: a disk-backed, fsynced, append-only JSONL file holding
// sentry detections keyed by device+rule+window. It follows the
// vetstore record discipline — one header line pinning the format
// version, then one fsynced record per detection — so a sentryd node
// SIGKILLed at any instant, including mid-append, restarts, recovers
// the journal, and answers "was this device ever flagged"
// byte-identically without re-seeing a single record of the stream.
//
// Recovery contract: Open replays the file record by record. A torn
// trailing line — a crash or power loss mid-append — is truncated away
// exactly once, at the end of the last intact record; everything before
// it is intact because every earlier append was fsynced before its Put
// returned. A record for a key seen earlier wins (last-write-wins), so
// re-journaling a detection is safe; Compact rewrites the file with one
// record per key, newest content, keys sorted, via a fsynced temp file
// and an atomic rename, so a crash mid-compaction leaves either the old
// file or the new one, never a mix.
//
// The package is deliberately free of wall-clock reads, goroutines and
// randomness: plain synchronous disk I/O guarded by one mutex.
package sentrystore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/sentry"
)

// storeVersion is the on-disk format: a header line then one detection
// record per line, appended and fsynced.
const storeVersion = 1

// header is the first line of a store file.
type header struct {
	V     int    `json:"v"`
	Store string `json:"store"`
}

// record is one persisted detection. The detection is kept as the raw
// JSON written at append time, so recovery hands back the exact bytes
// that were stored.
type record struct {
	Key       string          `json:"k"`
	Detection json.RawMessage `json:"detection"`
}

// FlagKey derives the journal key for a detection: device, rule pattern
// and the window index the triggering record fell in. One device firing
// the same rule in the same window journals to one key, so a retried
// batch replayed after a crash cannot double-count.
func FlagKey(d sentry.Detection, window time.Duration) string {
	idx := int64(0)
	if window > 0 {
		idx = int64(d.At / window)
	}
	return d.Device + "|" + d.Pattern + "|" + strconv.FormatInt(idx, 10)
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries is the number of distinct keys currently held.
	Entries int
	// Recovered is how many distinct keys Open replayed from disk.
	Recovered int
	// Appends counts Put calls that reached disk this session.
	Appends uint64
	// Duplicates counts records whose key was already present at
	// recovery (last-write-wins) plus re-Puts of a live key.
	Duplicates uint64
	// TornTail reports whether Open found and truncated a torn trailing
	// line. A second Open of the same file must report false.
	TornTail bool
}

// Store is the persistent detection journal. All methods are safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	mem   map[string]json.RawMessage
	stats Stats
}

// Open opens or creates the store at path, recovering any existing
// records. A torn trailing line (crash mid-append) is truncated away; a
// file whose header names a different format version is refused.
func Open(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sentrystore: read %s: %w", path, err)
	}
	s := &Store{path: path, mem: make(map[string]json.RawMessage)}
	if err == nil && len(data) > 0 {
		if err := s.recover(data); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("sentrystore: open %s for append: %w", path, err)
		}
		s.f = f
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sentrystore: create %s: %w", path, err)
	}
	hdr, err := json.Marshal(header{V: storeVersion, Store: "sentrystore"})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sentrystore: encode header: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("sentrystore: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sentrystore: sync header: %w", err)
	}
	s.f = f
	return s, nil
}

// recover replays the file contents into memory, truncating a torn
// tail. A line counts as intact only when it is newline-terminated AND
// parses as its expected shape; anything after the last intact record
// is a torn tail from a crash mid-append and is cut off exactly once,
// here.
func (s *Store) recover(data []byte) error {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		// The header itself is torn: the creating process died before
		// the header sync. Nothing was ever durably stored; start over.
		if err := os.Truncate(s.path, 0); err != nil {
			return fmt.Errorf("sentrystore: truncate torn header in %s: %w", s.path, err)
		}
		return s.rewriteHeader()
	}
	var hdr header
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return fmt.Errorf("sentrystore: %s: malformed header %q: %w", s.path, data[:nl], err)
	}
	if hdr.Store != "sentrystore" || hdr.V != storeVersion {
		return fmt.Errorf("sentrystore: %s holds store=%q v=%d, this build reads store=\"sentrystore\" v=%d; refusing to guess at a foreign format",
			s.path, hdr.Store, hdr.V, storeVersion)
	}
	intactEnd := nl + 1 // byte offset just past the last intact line
	rest := data[nl+1:]
	for len(rest) > 0 {
		ln := bytes.IndexByte(rest, '\n')
		if ln < 0 {
			break // unterminated final line: torn
		}
		var rec record
		if err := json.Unmarshal(rest[:ln], &rec); err != nil || rec.Key == "" || len(rec.Detection) == 0 {
			break // malformed line: torn write; nothing after it can be trusted
		}
		if _, dup := s.mem[rec.Key]; dup {
			s.stats.Duplicates++
		}
		s.mem[rec.Key] = rec.Detection
		intactEnd += ln + 1
		rest = rest[ln+1:]
	}
	s.stats.Recovered = len(s.mem)
	if intactEnd < len(data) {
		s.stats.TornTail = true
		if err := os.Truncate(s.path, int64(intactEnd)); err != nil {
			return fmt.Errorf("sentrystore: truncate torn tail of %s: %w", s.path, err)
		}
	}
	return nil
}

// rewriteHeader writes a fresh header into the (empty) store file.
func (s *Store) rewriteHeader() error {
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sentrystore: reopen %s: %w", s.path, err)
	}
	defer f.Close()
	hdr, err := json.Marshal(header{V: storeVersion, Store: "sentrystore"})
	if err != nil {
		return fmt.Errorf("sentrystore: encode header: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("sentrystore: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sentrystore: sync header: %w", err)
	}
	return nil
}

// Get returns the stored detection for key. The detection is decoded
// from the exact bytes appended by Put, so a recovered store serves the
// same detection the original process journaled.
func (s *Store) Get(key string) (sentry.Detection, bool, error) {
	s.mu.Lock()
	raw, ok := s.mem[key]
	s.mu.Unlock()
	if !ok {
		return sentry.Detection{}, false, nil
	}
	var d sentry.Detection
	if err := json.Unmarshal(raw, &d); err != nil {
		return sentry.Detection{}, false, fmt.Errorf("sentrystore: decode detection %q: %w", key, err)
	}
	return d, true, nil
}

// All returns every stored detection, sorted by key — the recovery feed
// for Engine.Restore.
func (s *Store) All() ([]sentry.Detection, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	raws := make([]json.RawMessage, len(keys))
	for i, k := range keys {
		raws[i] = s.mem[k]
	}
	s.mu.Unlock()
	ds := make([]sentry.Detection, len(keys))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &ds[i]); err != nil {
			return nil, fmt.Errorf("sentrystore: decode detection %q: %w", keys[i], err)
		}
	}
	return ds, nil
}

// Put appends the detection under key and fsyncs before returning, so a
// kill at any later instant preserves it. Re-putting a key is allowed
// (last-write-wins on recovery); Compact squeezes the duplicates out.
func (s *Store) Put(key string, d sentry.Detection) error {
	if key == "" {
		return errors.New("sentrystore: empty key")
	}
	raw, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("sentrystore: encode detection %q: %w", key, err)
	}
	line, err := json.Marshal(record{Key: key, Detection: raw})
	if err != nil {
		return fmt.Errorf("sentrystore: encode record %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("sentrystore: %s is closed", s.path)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sentrystore: append %q: %w", key, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sentrystore: sync %q: %w", key, err)
	}
	if _, dup := s.mem[key]; dup {
		s.stats.Duplicates++
	}
	s.mem[key] = raw
	s.stats.Appends++
	return nil
}

// Len reports the number of distinct keys held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.mem)
	return st
}

// Compact rewrites the store with exactly one record per key, keys
// sorted, dropping duplicate appends. The new contents are written to a
// temp file, fsynced, and renamed over the store; the directory is
// fsynced after the rename so the swap itself is durable. A crash at
// any point leaves either the complete old file or the complete new
// one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("sentrystore: %s is closed", s.path)
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("sentrystore: compact temp: %w", err)
	}
	tmpPath := tmp.Name()
	fail := func(e error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	hdr, err := json.Marshal(header{V: storeVersion, Store: "sentrystore"})
	if err != nil {
		return fail(fmt.Errorf("sentrystore: encode header: %w", err))
	}
	if _, err := tmp.Write(append(hdr, '\n')); err != nil {
		return fail(fmt.Errorf("sentrystore: compact write header: %w", err))
	}
	for _, k := range keys {
		line, err := json.Marshal(record{Key: k, Detection: s.mem[k]})
		if err != nil {
			return fail(fmt.Errorf("sentrystore: compact encode %q: %w", k, err))
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			return fail(fmt.Errorf("sentrystore: compact write %q: %w", k, err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("sentrystore: compact sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("sentrystore: compact close: %w", err))
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("sentrystore: compact rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Reopen the append handle on the new inode; the old one points at
	// the unlinked pre-compaction file.
	s.f.Close()
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		return fmt.Errorf("sentrystore: reopen after compact: %w", err)
	}
	s.f = f
	s.stats.Duplicates = 0
	return nil
}

// Close closes the append handle, keeping the file for a later Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Path returns the file the store persists to.
func (s *Store) Path() string { return s.path }

// Flagger adapts a Store to sentry.Journal: every detection the engine
// flags is journaled under its FlagKey before the triggering ingest
// returns. Window should match the engine's construction window — the
// key's window index is a dedup granularity, not a detection input, so
// a live config change does not need to rewire the adapter.
type Flagger struct {
	S      *Store
	Window time.Duration
}

// Append implements sentry.Journal.
func (f Flagger) Append(d sentry.Detection) error {
	return f.S.Put(FlagKey(d, f.Window), d)
}
