package sentrystore

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// helperEnv makes a re-exec'ed copy of the test binary behave as a
// journal writer: it opens the store at the given path and appends
// deterministic detections as fast as the fsyncs allow, until it is
// killed. It prints "put N" after each durable append so the parent
// knows the prefix that must survive.
const helperEnv = "SENTRYSTORE_HELPER_PATH"

func TestMain(m *testing.M) {
	path, ok := os.LookupEnv(helperEnv)
	if !ok {
		os.Exit(m.Run())
	}
	s, err := Open(path)
	if err != nil {
		os.Stderr.WriteString("helper: " + err.Error() + "\n")
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if err := s.Put(keyFor(i), makeDetection(i)); err != nil {
			os.Stderr.WriteString("helper: " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Stdout.WriteString("put " + strconv.Itoa(i) + "\n")
	}
}

// TestRecoverAfterSIGKILL is the headline crash-safety check for the
// detection journal: a writer process is SIGKILLed mid-append-loop, the
// store is reopened, and every detection whose Put had returned before
// the kill must come back byte-identical — the property that lets a
// restarted sentryd answer "was this device ever flagged" from disk
// alone. A second reopen must find a clean file: whatever tail the kill
// left is truncated exactly once.
func TestRecoverAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/flags.store"

	victim := exec.Command(exe)
	victim.Env = append(os.Environ(), helperEnv+"="+path)
	var out bytes.Buffer
	victim.Stdout = &out
	victim.Stderr = os.Stderr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	_ = victim.Process.Kill()
	_ = victim.Wait() // reap; kill signal expected

	// The highest index the helper acknowledged: every Put up to and
	// including it returned after its fsync, so all of them must survive.
	acked := -1
	for _, ln := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if n, ok := strings.CutPrefix(ln, "put "); ok {
			if i, err := strconv.Atoi(n); err == nil && i > acked {
				acked = i
			}
		}
	}
	if acked < 0 {
		t.Skip("victim acknowledged no appends before the kill; nothing to recover")
	}

	r1, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	st1 := r1.Stats()
	if st1.Recovered < acked+1 {
		t.Fatalf("recovered %d detections, but %d appends were acknowledged durable", st1.Recovered, acked+1)
	}
	for i := 0; i <= acked; i++ {
		got, ok, err := r1.Get(keyFor(i))
		if err != nil || !ok {
			t.Fatalf("detection %d lost after SIGKILL (ok=%v err=%v)", i, ok, err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(makeDetection(i))
		if !bytes.Equal(gb, wb) {
			t.Fatalf("detection %d differs after recovery:\n%s\nvs\n%s", i, gb, wb)
		}
	}
	// The recovered journal keeps serving writes.
	if err := r1.Put("post-crash|draw-and-destroy|0", makeDetection(acked+1)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	r1.Close()

	// If the kill left a torn tail, the first Open truncated it; this one
	// must see a clean file with the same detections.
	r2, err := Open(path)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer r2.Close()
	st2 := r2.Stats()
	if st2.TornTail {
		t.Fatal("second open still sees a torn tail; truncation must happen exactly once")
	}
	if st2.Recovered != st1.Recovered+1 {
		t.Fatalf("second open recovered %d, want %d", st2.Recovered, st1.Recovered+1)
	}
	t.Logf("recovered %d detections after SIGKILL (torn tail on first open: %v)", st1.Recovered, st1.TornTail)
}
