package sentrystore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sentry"
)

// makeDetection builds a deterministic detection for index i, varying
// the pattern and timing fields so byte-identity is a real check.
func makeDetection(i int) sentry.Detection {
	d := sentry.Detection{
		Device:        fmt.Sprintf("dev-%05d", i),
		At:            time.Duration(i+1) * 137 * time.Millisecond,
		Calls:         8 + i%7,
		ConfigVersion: uint64(1 + i%3),
	}
	if i%2 == 0 {
		d.Pattern = sentry.PatternDrawAndDestroy
		d.Swaps = 4 + i%4
		d.MeanSwapGap = time.Duration(9+i%5) * time.Millisecond
	} else {
		d.Pattern = sentry.PatternNotifyFlood
		d.Calls = 30 + i
	}
	return d
}

func keyFor(i int) string {
	return FlagKey(makeDetection(i), 3*time.Second)
}

func TestPutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put(keyFor(i), makeDetection(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Recovered != n || st.TornTail {
		t.Fatalf("recovery stats %+v, want Recovered=%d TornTail=false", st, n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := r.Get(keyFor(i))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", keyFor(i), ok, err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(makeDetection(i))
		if !bytes.Equal(gb, wb) {
			t.Fatalf("recovered detection %d differs:\n%s\nvs\n%s", i, gb, wb)
		}
	}
	if _, ok, _ := r.Get("absent|draw-and-destroy|0"); ok {
		t.Fatal("absent key found")
	}
}

// TestAllSortedByKey: All returns the journal in key order — the stable
// input sentryd restores from.
func TestAllSortedByKey(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "flags.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Insert out of order.
	for _, i := range []int{9, 2, 7, 0, 4} {
		if err := s.Put(keyFor(i), makeDetection(i)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("All returned %d detections, want 5", len(ds))
	}
	for j := 1; j < len(ds); j++ {
		a := FlagKey(ds[j-1], 3*time.Second)
		b := FlagKey(ds[j], 3*time.Second)
		if a >= b {
			t.Fatalf("All not sorted: %q >= %q", a, b)
		}
	}
}

// TestTornTailTruncatedExactlyOnce plants the disk image a crash
// mid-append leaves behind and checks the first Open truncates it
// exactly once: the second Open sees a clean file and no torn tail.
func TestTornTailTruncatedExactlyOnce(t *testing.T) {
	for _, tail := range []string{
		`{"k":"dev-x|draw-and-destroy|0","detection":{"dev`, // partial JSON, no newline
		`{"k":"dev-x|draw-and-destroy|0","detection":`,      // truncated mid-record
		"{garbage}\n", // newline-terminated but malformed
		`{"k":"","detection":{"device":"x"}}` + "\n", // parseable but empty key
	} {
		t.Run(fmt.Sprintf("%.12q", tail), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "flags.store")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := s.Put(keyFor(i), makeDetection(i)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			intact, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tail)
			f.Close()

			r1, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if st := r1.Stats(); !st.TornTail || st.Recovered != 5 {
				t.Fatalf("first open stats %+v, want TornTail=true Recovered=5", st)
			}
			r1.Close()
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, intact) {
				t.Fatalf("truncation did not restore the intact prefix: %d bytes vs %d", len(after), len(intact))
			}

			r2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if st := r2.Stats(); st.TornTail || st.Recovered != 5 {
				t.Fatalf("second open stats %+v, want TornTail=false Recovered=5 (tail must be truncated exactly once)", st)
			}
		})
	}
}

// TestTornHeaderStartsOver: a crash before the header sync leaves an
// unterminated first line; the store must reset to empty, not error.
func TestTornHeaderStartsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	if err := os.WriteFile(path, []byte(`{"v":1,"st`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after torn header, want 0", s.Len())
	}
	if err := s.Put(keyFor(0), makeDetection(0)); err != nil {
		t.Fatal(err)
	}
}

func TestForeignFormatRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	if err := os.WriteFile(path, []byte(`{"v":99,"store":"other"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("foreign format opened (err=%v)", err)
	}
	// A vetstore file must also be refused, not silently absorbed.
	if err := os.WriteFile(path, []byte(`{"v":1,"store":"vetstore"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("vetstore-format file opened as sentrystore")
	}
}

// TestDuplicatesAndCompact: re-journaling the same flag key is counted
// as a duplicate (last write wins) and Compact squeezes the history to
// one record per key, deterministically.
func TestDuplicatesAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(keyFor(i), makeDetection(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A retried batch re-fires the same flag in the same window.
	if err := s.Put(keyFor(3), makeDetection(3)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(bytes.Split(bytes.TrimRight(compacted, "\n"), []byte("\n"))), 11; got != want {
		t.Fatalf("compacted file has %d lines, want %d (header + 10 records)", got, want)
	}
	// The store stays writable after compaction.
	if err := s.Put(keyFor(10), makeDetection(10)); err != nil {
		t.Fatalf("Put after Compact: %v", err)
	}
	s.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 11 {
		t.Fatalf("Len after compact+put = %d, want 11", r.Len())
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	first, _ := os.ReadFile(path)
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if !bytes.Equal(first, second) {
		t.Fatal("Compact output is not deterministic")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(keyFor(0), makeDetection(0)); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact on closed store succeeded")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "flags.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("", makeDetection(0)); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestFlaggerJournalsEngineDetections wires a real engine to a real
// store through the Flagger seam and checks a fresh engine restored
// from the store answers /v1/flagged-style queries identically.
func TestFlaggerJournalsEngineDetections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flags.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sentry.NewEngine(sentry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	window := e.Config().Window
	e.SetJournal(Flagger{S: s, Window: window})

	// A draw-and-destroy attacker stream: rapid add/remove swap pairs.
	var recs []sentry.Record
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * 6 * time.Millisecond
		recs = append(recs,
			sentry.Record{Device: "dev-a", Seq: uint64(2 * i), Method: sentry.MethodAddView, At: at},
			sentry.Record{Device: "dev-a", Seq: uint64(2*i + 1), Method: sentry.MethodRemoveView, At: at + 3*time.Millisecond},
		)
	}
	if _, err := e.Ingest("dev-a", recs); err != nil {
		t.Fatal(err)
	}
	want, ok := e.DetectionFor("dev-a")
	if !ok {
		t.Fatal("attacker stream not detected")
	}
	if e.JournalErrors() != 0 {
		t.Fatalf("JournalErrors = %d", e.JournalErrors())
	}
	s.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ds, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sentry.NewEngine(sentry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(ds); err != nil {
		t.Fatal(err)
	}
	got, ok := e2.DetectionFor("dev-a")
	if !ok {
		t.Fatal("detection lost across store reopen + restore")
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatalf("restored detection differs:\n%s\nvs\n%s", gb, wb)
	}
}
