package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

const evilApp binder.ProcessID = "com.evil.app"

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder("", 0); err == nil {
		t.Fatal("empty app accepted")
	}
	if _, err := NewRecorder("a", -1); err == nil {
		t.Fatal("negative limit accepted")
	}
	r, err := NewRecorder("a", 0)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if err := r.Attach(nil); err == nil {
		t.Fatal("nil stack accepted")
	}
}

// TestRecorderCapturesFig3Sequence runs one overlay-attack cycle and
// checks the timeline contains the Fig. 3 milestones in causal order:
// addView issued → received → window attached → notify draw → removeView
// received → window removed → notify remove.
func TestRecorderCapturesFig3Sequence(t *testing.T) {
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 missing")
	}
	st, err := sysserver.Assemble(p, 3)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(evilApp)
	rec, err := NewRecorder(evilApp, 0)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if err := rec.Attach(st); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App: evilApp, D: 150 * time.Millisecond,
		Bounds: geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH)),
	})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(400*time.Millisecond, "stop", atk.Stop)
	if err := st.Clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	entries := rec.Entries()
	if len(entries) < 8 {
		t.Fatalf("entries = %d, want a full cycle", len(entries))
	}
	// Chronological order.
	for i := 1; i < len(entries); i++ {
		if entries[i].At < entries[i-1].At {
			t.Fatal("entries not chronological")
		}
	}
	// The milestones appear, in causal order.
	milestones := []string{
		"addView() issued",
		"addView received",
		"overlay window #1 attached",
		"notify: draw notification view",
		"removeView received",
		"overlay window #1 removed",
		"notify: remove notification view",
	}
	pos := 0
	for _, m := range milestones {
		found := false
		for ; pos < len(entries); pos++ {
			if strings.Contains(entries[pos].Text, m) {
				found = true
				pos++
				break
			}
		}
		if !found {
			t.Fatalf("milestone %q missing or out of order\ntimeline:\n%s", m, rec.Render())
		}
	}
	// Render has the three lane headers.
	out := rec.Render()
	for _, h := range []string{"malicious app", "system server", "system ui"} {
		if !strings.Contains(out, h) {
			t.Fatalf("render missing lane %q", h)
		}
	}
}

// TestRecorderLimit caps the timeline.
func TestRecorderLimit(t *testing.T) {
	st, err := sysserver.Assemble(device.Default(), 5)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(evilApp)
	rec, err := NewRecorder(evilApp, 10)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if err := rec.Attach(st); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App: evilApp, D: 50 * time.Millisecond,
		Bounds: geom.RectWH(0, 0, 1080, 1920),
	})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(5*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(8 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(rec.Entries()); got > 10 {
		t.Fatalf("entries = %d, limit 10", got)
	}
}

// TestRecorderIgnoresOtherApps: traffic from unrelated apps stays out.
func TestRecorderIgnoresOtherApps(t *testing.T) {
	st, err := sysserver.Assemble(device.Default(), 7)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	const other binder.ProcessID = "com.other.app"
	st.WM.GrantOverlayPermission(other)
	rec, err := NewRecorder(evilApp, 0)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if err := rec.Attach(st); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := st.Bus.Call(other, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
		Handle: 1, Type: 3 /* overlay */, Bounds: geom.RectWH(0, 0, 100, 100),
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	for _, e := range rec.Entries() {
		if strings.Contains(e.Text, "addView") && e.Lane == LaneApp {
			t.Fatalf("recorded other app's call: %+v", e)
		}
		if strings.Contains(e.Text, "window") {
			t.Fatalf("recorded other app's window: %+v", e)
		}
	}
}
