// Package trace records and renders the entity interaction of an attack
// run — the reproduction of the paper's Fig. 3 (overlay attack) and Fig. 5
// (toast attack) sequence diagrams. A Recorder subscribes to the Binder
// bus (message sends and deliveries) and the Window Manager (window
// attach/detach), and renders a chronological three-lane timeline:
// malicious app, System Server, System UI.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/binder"
	"repro/internal/sysserver"
	"repro/internal/sysui"
	"repro/internal/wm"
)

// Lane identifies an actor column in the rendered diagram.
type Lane int

// The three lanes of Fig. 3.
const (
	LaneApp Lane = iota + 1
	LaneSystemServer
	LaneSystemUI
)

// String renders the lane name.
func (l Lane) String() string {
	switch l {
	case LaneApp:
		return "app"
	case LaneSystemServer:
		return "system_server"
	case LaneSystemUI:
		return "system_ui"
	default:
		return fmt.Sprintf("Lane(%d)", int(l))
	}
}

// Entry is one timeline event.
type Entry struct {
	// At is the virtual time.
	At time.Duration
	// Lane is the actor the event happened at.
	Lane Lane
	// Text describes the event.
	Text string
}

// Recorder collects timeline entries from a stack.
type Recorder struct {
	app     binder.ProcessID
	entries []Entry
	limit   int
}

// NewRecorder builds a recorder focused on one app's interactions. limit
// caps the number of recorded entries (0 selects 4096) so long runs do not
// accumulate unbounded timelines.
func NewRecorder(app binder.ProcessID, limit int) (*Recorder, error) {
	if app == "" {
		return nil, errors.New("trace: empty app")
	}
	if limit == 0 {
		limit = 4096
	}
	if limit < 0 {
		return nil, fmt.Errorf("trace: negative limit %d", limit)
	}
	return &Recorder{app: app, limit: limit}, nil
}

// Attach subscribes the recorder to a stack's Binder bus and window
// manager. Call before the attack starts.
func (r *Recorder) Attach(stack *sysserver.Stack) error {
	if stack == nil {
		return errors.New("trace: nil stack")
	}
	stack.Bus.Observe(r.observeTx)
	stack.WM.OnWindowEvent(r.observeWindow)
	return nil
}

func (r *Recorder) add(e Entry) {
	if len(r.entries) >= r.limit {
		return
	}
	r.entries = append(r.entries, e)
}

func (r *Recorder) observeTx(tx binder.Transaction) {
	if tx.From != r.app && tx.From != binder.SystemServer {
		return
	}
	switch {
	case tx.From == r.app && tx.To == binder.SystemServer:
		r.add(Entry{At: tx.SentAt, Lane: LaneApp, Text: tx.Method + "() issued"})
		r.add(Entry{At: tx.DeliveredAt, Lane: LaneSystemServer,
			Text: fmt.Sprintf("%s received (T=%.1fms)", tx.Method, ms(tx.DeliveredAt-tx.SentAt))})
	case tx.From == binder.SystemServer && tx.To == binder.SystemUI:
		label := tx.Method
		switch tx.Method {
		case sysui.MethodPostOverlayAlert:
			label = "notify: draw notification view"
		case sysui.MethodRemoveOverlayAlert:
			label = "notify: remove notification view"
		}
		r.add(Entry{At: tx.SentAt, Lane: LaneSystemServer, Text: label + " →"})
		r.add(Entry{At: tx.DeliveredAt, Lane: LaneSystemUI,
			Text: fmt.Sprintf("%s (Tn=%.1fms)", label, ms(tx.DeliveredAt-tx.SentAt))})
	}
}

func (r *Recorder) observeWindow(ev wm.WindowEvent) {
	if ev.Window.Owner != r.app {
		return
	}
	verb := "attached"
	if ev.Kind == wm.WindowRemoved {
		verb = "removed"
	}
	r.add(Entry{At: ev.At, Lane: LaneSystemServer,
		Text: fmt.Sprintf("%s window #%d %s", ev.Window.Type, ev.Window.ID, verb)})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Entries returns the recorded timeline in chronological order.
func (r *Recorder) Entries() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Render draws the three-lane sequence diagram, Fig. 3 style.
func (r *Recorder) Render() string {
	entries := r.Entries()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s │ %-28s │ %-40s │ %s\n", "time", "malicious app", "system server", "system ui")
	sb.WriteString(strings.Repeat("─", 110) + "\n")
	for _, e := range entries {
		var app, ss, ui string
		switch e.Lane {
		case LaneApp:
			app = e.Text
		case LaneSystemServer:
			ss = e.Text
		case LaneSystemUI:
			ui = e.Text
		}
		fmt.Fprintf(&sb, "%-12s │ %-28s │ %-40s │ %s\n",
			fmt.Sprintf("%.1fms", ms(e.At)), app, ss, ui)
	}
	return sb.String()
}
