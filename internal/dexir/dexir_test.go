package dexir

import (
	"reflect"
	"testing"
)

func TestMethodRefParts(t *testing.T) {
	if c := RefAddView.Class(); c != "Landroid/view/WindowManager;" {
		t.Errorf("Class() = %q", c)
	}
	if n := RefAddView.Name(); n != "addView" {
		t.Errorf("Name() = %q", n)
	}
	if c := MethodRef("garbage").Class(); c != "" {
		t.Errorf("Class() on malformed ref = %q", c)
	}
	if n := MethodRef("garbage").Name(); n != "" {
		t.Errorf("Name() on malformed ref = %q", n)
	}
}

func TestResolveReflective(t *testing.T) {
	ref, ok := ResolveReflective("android.view.WindowManager", "addView")
	if !ok || ref != RefAddView {
		t.Fatalf("ResolveReflective = (%q,%v)", ref, ok)
	}
	if _, ok := ResolveReflective("com.example.Runtime", "built"); ok {
		t.Fatal("unknown pair resolved")
	}
}

func testApp() *App {
	cls := ClassName("com.x", "Main")
	onCreate := Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	helper := Ref(cls, "helper", "()V")
	return &App{
		Package:     "com.x",
		Permissions: []string{PermSystemAlertWindow},
		Components: []Component{{
			Name: cls, Kind: Activity, EntryPoints: []MethodRef{onCreate},
		}},
		Classes: []Class{{
			Name: cls,
			Methods: []Method{
				{Ref: onCreate, Body: []Instruction{
					{Op: OpInvoke, Target: helper},
					{Op: OpRegisterCallback, Target: RefHandlerPostDelayed, Callback: helper},
				}},
				{Ref: helper, Body: []Instruction{
					{Op: OpConstString, Str: "android.view.WindowManager"},
					{Op: OpConstString, Str: "addView"},
					{Op: OpReflectInvoke},
					{Op: OpInvoke, Target: RefRemoveView},
				}},
			},
		}},
	}
}

func TestAppMethodLookup(t *testing.T) {
	a := testApp()
	cls := ClassName("com.x", "Main")
	m, ok := a.Method(Ref(cls, "helper", "()V"))
	if !ok || len(m.Body) != 4 {
		t.Fatalf("Method lookup = (%v, ok=%v)", m, ok)
	}
	if _, ok := a.Method("Lnone;->x()V"); ok {
		t.Fatal("missing method found")
	}
}

func TestHasPermission(t *testing.T) {
	a := testApp()
	if !a.HasPermission(PermSystemAlertWindow) {
		t.Fatal("SAW missing")
	}
	if a.HasPermission(PermBindAccessibility) {
		t.Fatal("unexpected permission")
	}
}

// TestMethodRefTableHidesReflection: the reflectively invoked addView must
// NOT appear in the ref table (grep blindness), while the direct
// removeView and the registration target must.
func TestMethodRefTableHidesReflection(t *testing.T) {
	table := testApp().MethodRefTable()
	has := func(r MethodRef) bool {
		for _, s := range table {
			if s == string(r) {
				return true
			}
		}
		return false
	}
	if has(RefAddView) {
		t.Errorf("reflective addView leaked into ref table: %v", table)
	}
	for _, want := range []MethodRef{RefRemoveView, RefHandlerPostDelayed, RefReflectInvoke} {
		if !has(want) {
			t.Errorf("ref table missing %s: %v", want, table)
		}
	}
	// Table is sorted and deduplicated.
	if !sortedUnique(table) {
		t.Errorf("ref table not sorted/unique: %v", table)
	}
}

func sortedUnique(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func TestClassNameAndRef(t *testing.T) {
	cls := ClassName("com.gen.app1", "Main")
	if cls != "Lcom/gen/app1/Main;" {
		t.Fatalf("ClassName = %q", cls)
	}
	ref := Ref(cls, "run", "()V")
	if ref != "Lcom/gen/app1/Main;->run()V" {
		t.Fatalf("Ref = %q", ref)
	}
	if ref.Class() != cls || ref.Name() != "run" {
		t.Fatalf("round-trip failed: %q %q", ref.Class(), ref.Name())
	}
}

func TestComponentKindString(t *testing.T) {
	want := map[ComponentKind]string{
		Activity:             "activity",
		Service:              "service",
		Receiver:             "receiver",
		AccessibilityService: "accessibility-service",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := ComponentKind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestMethodRefTableDeterministic(t *testing.T) {
	a, b := testApp().MethodRefTable(), testApp().MethodRefTable()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ref table nondeterministic: %v vs %v", a, b)
	}
}
