package dexir

import (
	"sort"
	"strings"
	"testing"
)

// FuzzMethodRef: Class/Name parsing never panics on arbitrary reference
// strings, and a reference built by Ref/ClassName round-trips.
func FuzzMethodRef(f *testing.F) {
	f.Add("com.gen.app1", "Main", "onCreate", "(Landroid/os/Bundle;)V")
	f.Add("", "", "", "")
	f.Add("a.b", "C$Inner", "run", "()V")
	f.Add("x", ";->", "->", "(")
	f.Add("p\x00q", "M", "m\xff", "()")
	f.Fuzz(func(t *testing.T, pkg, simple, name, sig string) {
		cls := ClassName(pkg, simple)
		ref := Ref(cls, name, sig)
		// Parsing any string (well-formed or not) must not panic.
		_ = ref.Class()
		_ = ref.Name()
		_ = MethodRef(pkg).Class()
		_ = MethodRef(sig).Name()
		// A reference whose parts are free of the ";->" and "(" delimiters
		// parses back exactly.
		if !strings.Contains(name, "(") && !strings.Contains(name, ";->") &&
			!strings.Contains(pkg, ";->") && !strings.Contains(simple, ";->") &&
			strings.HasPrefix(sig, "(") {
			if got := ref.Class(); got != cls {
				t.Fatalf("Class() = %q, want %q", got, cls)
			}
			if got := ref.Name(); got != name {
				t.Fatalf("Name() = %q, want %q", got, name)
			}
		}
	})
}

// FuzzMethodRefTable: IR construction from arbitrary method shapes never
// panics, and the ref table is always sorted, deduplicated, and free of
// empty entries — the contract the grep scanner relies on.
func FuzzMethodRefTable(f *testing.F) {
	f.Add("com.a.b", "t1", "t2", "cb", int8(3), false)
	f.Add("p", "", "", "", int8(0), true)
	f.Add("p.q", string(RefAddView), string(RefRemoveView), string(RefToastSetView), int8(2), true)
	f.Add("z", "dup", "dup", "dup", int8(5), false)
	f.Fuzz(func(t *testing.T, pkg, target1, target2, callback string, nops int8, reflect bool) {
		cls := ClassName(pkg, "Main")
		body := []Instruction{
			{Op: OpInvoke, Target: MethodRef(target1)},
			{Op: OpRegisterCallback, Target: MethodRef(target2), Callback: MethodRef(callback)},
		}
		for i := int8(0); i < nops && i < 16; i++ {
			body = append(body, Instruction{Op: OpNop})
		}
		if reflect {
			body = append(body, Instruction{Op: OpReflectInvoke})
		}
		app := &App{
			Package: pkg,
			Classes: []Class{{Name: cls, Methods: []Method{
				{Ref: Ref(cls, "onCreate", "(Landroid/os/Bundle;)V"), Body: body},
				{Ref: Ref(cls, "onCreate", "(Landroid/os/Bundle;)V"), Body: body}, // duplicate method
			}}},
		}
		table := app.MethodRefTable()
		if !sort.StringsAreSorted(table) {
			t.Fatalf("ref table not sorted: %q", table)
		}
		seen := make(map[string]bool, len(table))
		for _, r := range table {
			if r == "" {
				t.Fatal("ref table contains an empty entry")
			}
			if seen[r] {
				t.Fatalf("ref table contains duplicate %q", r)
			}
			seen[r] = true
		}
		if reflect && !seen[string(RefReflectInvoke)] {
			t.Fatal("reflective invoke missing from ref table")
		}
		// Lookup over the constructed IR must not panic either.
		if _, ok := app.Method(Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")); !ok {
			t.Fatal("constructed method not found")
		}
	})
}
