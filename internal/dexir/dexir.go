// Package dexir defines a DEX-like intermediate representation for the
// Section VI-C2 app-market study and the Section VII static vetting
// defense. A real APK ships its code as DEX bytecode; the analyses the
// paper ran with FlowDroid operate on (a) the flat method-reference table
// — what a grep-style scanner sees — and (b) the instruction stream, from
// which a call graph and interprocedural reachability can be computed.
//
// This package models exactly the slice of DEX that distinguishes those
// two analyses:
//
//   - Classes hold methods; methods hold instructions.
//   - OpInvoke calls a framework or app method directly: its target lands
//     in the method-reference table (grep sees it, even in dead code).
//   - OpRegisterCallback models Handler.postDelayed / Timer.schedule /
//     listener registration: the framework target is in the ref table and
//     the call graph gains an edge to the callback method.
//   - OpConstString + OpReflectInvoke model java.lang.reflect dispatch:
//     the *strings* are in the string table but the resolved target never
//     appears in the method-reference table, so grep misses it while a
//     FlowDroid-style constant-string resolver does not.
//   - OpMove / OpConcat / OpReturn model the register dataflow that
//     obfuscated reflection rides on: class and method names split across
//     concatenated const-string fragments, or returned as constants from
//     helper methods. Only an interprocedural constant-propagation pass
//     (staticanalysis Tier2) follows them; the rolling const-string window
//     of the baseline pass does not.
//   - GuardAlwaysFalse marks an instruction behind a branch that can never
//     execute; a path-insensitive reachability pass still traverses it
//     (a deliberate over-approximation, as in real analyzers). GuardFlag
//     marks a branch on a named whole-program boolean (a BuildConfig-style
//     constant set by OpSetFlag); a pass that propagates those constants
//     can prune the branch when the flag is statically false.
//
// Manifest-declared components carry their lifecycle entry points, the
// roots of the reachability pass.
package dexir

import (
	"fmt"
	"sort"
	"strings"
)

// MethodRef is a DEX-style method reference,
// e.g. "Landroid/view/WindowManager;->addView(Landroid/view/View;Landroid/view/ViewGroup$LayoutParams;)V".
type MethodRef string

// Class extracts the declaring-class portion of the reference
// ("Landroid/view/WindowManager;"), or "" if malformed.
func (r MethodRef) Class() string {
	if i := strings.Index(string(r), ";->"); i >= 0 {
		return string(r)[:i+1]
	}
	return ""
}

// Name extracts the bare method name ("addView"), or "" if malformed.
func (r MethodRef) Name() string {
	i := strings.Index(string(r), ";->")
	if i < 0 {
		return ""
	}
	rest := string(r)[i+3:]
	if j := strings.IndexByte(rest, '('); j >= 0 {
		return rest[:j]
	}
	return ""
}

// Framework method references the detectors treat as sinks or as callback
// registration points. These mirror the constants the paper's FlowDroid
// configuration lists.
const (
	RefAddView      MethodRef = "Landroid/view/WindowManager;->addView(Landroid/view/View;Landroid/view/ViewGroup$LayoutParams;)V"
	RefRemoveView   MethodRef = "Landroid/view/WindowManager;->removeView(Landroid/view/View;)V"
	RefToastSetView MethodRef = "Landroid/widget/Toast;->setView(Landroid/view/View;)V"
	RefToastShow    MethodRef = "Landroid/widget/Toast;->show()V"

	RefHandlerPostDelayed MethodRef = "Landroid/os/Handler;->postDelayed(Ljava/lang/Runnable;J)Z"
	RefTimerScheduleRate  MethodRef = "Ljava/util/Timer;->scheduleAtFixedRate(Ljava/util/TimerTask;JJ)V"
	RefViewPost           MethodRef = "Landroid/view/View;->post(Ljava/lang/Runnable;)Z"

	RefReflectInvoke MethodRef = "Ljava/lang/reflect/Method;->invoke(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;"
)

// Permission strings the vetting detectors consult.
const (
	PermSystemAlertWindow = "android.permission.SYSTEM_ALERT_WINDOW"
	PermBindAccessibility = "android.permission.BIND_ACCESSIBILITY_SERVICE"
)

// reflectiveTargets maps (binary class name, method name) const-string
// pairs to the framework reference a constant-propagating resolver would
// recover. Real FlowDroid setups resolve exactly these easy cases; strings
// assembled at runtime stay unresolved.
var reflectiveTargets = map[[2]string]MethodRef{
	{"android.view.WindowManager", "addView"}:    RefAddView,
	{"android.view.WindowManager", "removeView"}: RefRemoveView,
	{"android.widget.Toast", "setView"}:          RefToastSetView,
	{"android.widget.Toast", "show"}:             RefToastShow,
}

// ResolveReflective resolves a (class, method) const-string pair to a
// framework reference, reporting whether the resolver knows the pair.
func ResolveReflective(class, method string) (MethodRef, bool) {
	ref, ok := reflectiveTargets[[2]string{class, method}]
	return ref, ok
}

// Op enumerates instruction kinds.
type Op int

// Instruction kinds. OpNop stands in for arbitrary non-call bytecode.
const (
	OpNop Op = iota
	// OpInvoke calls Target directly (framework or app method).
	OpInvoke
	// OpRegisterCallback invokes the framework registration method Target
	// (e.g. Handler.postDelayed) passing the app method Callback; the call
	// graph gains a callback edge to Callback.
	OpRegisterCallback
	// OpConstString loads Str; consecutive const-strings feed a following
	// OpReflectInvoke.
	OpConstString
	// OpReflectInvoke calls java.lang.reflect.Method.invoke. The actual
	// target is whatever the two preceding OpConstString instructions
	// resolve to; if they don't resolve, the call is opaque. When ClassReg
	// and MethodReg are both set, the class/method names live in registers
	// instead, and only a register-tracking pass can resolve the call.
	OpReflectInvoke
	// OpMove copies register SrcA into Dst.
	OpMove
	// OpConcat stores SrcA + SrcB (string concatenation) into Dst.
	OpConcat
	// OpReturn returns the string in register SrcA to the caller; an
	// OpInvoke with Dst set receives it.
	OpReturn
	// OpSetFlag assigns the whole-program boolean Flag the constant
	// BoolVal, modeling a BuildConfig-style static field initializer.
	OpSetFlag
)

// Guard marks control-flow context for an instruction.
type Guard int

// Guard values.
const (
	// GuardNone: the instruction executes whenever the method runs.
	GuardNone Guard = iota
	// GuardAlwaysFalse: the instruction sits behind a branch whose
	// condition is statically (but not syntactically) false — dead at
	// runtime, alive to a path-insensitive analysis.
	GuardAlwaysFalse
	// GuardFlag: the instruction sits behind a branch on the named
	// whole-program boolean Flag. It is live unless a pass proves the
	// flag constant-false from the app's OpSetFlag assignments.
	GuardFlag
)

// Reg names a string register inside a method body. Registers are method-
// local; 0 means "no register" so the zero-valued Instruction keeps its
// pre-dataflow meaning.
type Reg int

// Instruction is one IR instruction.
type Instruction struct {
	Op Op
	// Target is the invoked or registration framework/app method.
	Target MethodRef
	// Callback is the app method registered by OpRegisterCallback.
	Callback MethodRef
	// Str is the OpConstString payload.
	Str string
	// InLoop marks the instruction as sitting inside an intra-method loop.
	InLoop bool
	// Guard marks unreachable-at-runtime context.
	Guard Guard
	// Flag names the whole-program boolean for OpSetFlag and GuardFlag.
	Flag string `json:",omitempty"`
	// BoolVal is the constant OpSetFlag assigns to Flag.
	BoolVal bool `json:",omitempty"`
	// Dst receives the result of OpConstString, OpMove, OpConcat, or an
	// OpInvoke of a string-returning method.
	Dst Reg `json:",omitempty"`
	// SrcA is the source register of OpMove and OpReturn, and the left
	// operand of OpConcat; SrcB is OpConcat's right operand.
	SrcA Reg `json:",omitempty"`
	SrcB Reg `json:",omitempty"`
	// ClassReg and MethodReg, when both nonzero, carry the class and
	// method name of an OpReflectInvoke in registers.
	ClassReg  Reg `json:",omitempty"`
	MethodReg Reg `json:",omitempty"`
}

// Method is an app-defined method with a body.
type Method struct {
	Ref  MethodRef
	Body []Instruction
}

// Class is an app-defined class.
type Class struct {
	Name    string // binary name, e.g. "Lcom/gen/app000001/Main;"
	Methods []Method
}

// ComponentKind enumerates manifest component types.
type ComponentKind int

// Component kinds.
const (
	Activity ComponentKind = iota
	Service
	Receiver
	// AccessibilityService is a Service bound with
	// android.permission.BIND_ACCESSIBILITY_SERVICE.
	AccessibilityService
)

// String names the kind for reports.
func (k ComponentKind) String() string {
	switch k {
	case Activity:
		return "activity"
	case Service:
		return "service"
	case Receiver:
		return "receiver"
	case AccessibilityService:
		return "accessibility-service"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Component is a manifest-declared component with its lifecycle entry
// points (the reachability roots).
type Component struct {
	Name        string
	Kind        ComponentKind
	EntryPoints []MethodRef
}

// App is one application's IR: the unit the static analyzer consumes.
type App struct {
	Package     string
	Permissions []string
	Components  []Component
	Classes     []Class

	methods map[MethodRef]*Method // lazy index
}

// HasPermission reports whether the app requests the permission.
func (a *App) HasPermission(perm string) bool {
	for _, p := range a.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

// Method looks up an app-defined method by reference.
func (a *App) Method(ref MethodRef) (*Method, bool) {
	if a.methods == nil {
		a.methods = make(map[MethodRef]*Method)
		for ci := range a.Classes {
			c := &a.Classes[ci]
			for mi := range c.Methods {
				a.methods[c.Methods[mi].Ref] = &c.Methods[mi]
			}
		}
	}
	m, ok := a.methods[ref]
	return m, ok
}

// MethodRefTable returns the flat, sorted, deduplicated method-reference
// table — what `classes.dex` exposes to a grep-style scanner. Direct and
// registration targets appear (including those in dead code); reflective
// targets do not (they exist only as const-strings).
func (a *App) MethodRefTable() []string {
	seen := make(map[string]bool, 16)
	var out []string
	add := func(r MethodRef) {
		if r == "" || seen[string(r)] {
			return
		}
		seen[string(r)] = true
		out = append(out, string(r))
	}
	for _, c := range a.Classes {
		for _, m := range c.Methods {
			for _, in := range m.Body {
				switch in.Op {
				case OpInvoke:
					add(in.Target)
				case OpRegisterCallback:
					add(in.Target)
					add(in.Callback)
				case OpReflectInvoke:
					add(RefReflectInvoke)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// ClassName builds a binary class name from a package and simple name,
// e.g. ClassName("com.gen.app1", "Main") = "Lcom/gen/app1/Main;".
func ClassName(pkg, simple string) string {
	return "L" + strings.ReplaceAll(pkg, ".", "/") + "/" + simple + ";"
}

// Ref builds an app method reference from a binary class name, method
// name and signature, e.g. Ref(cls, "onCreate", "(Landroid/os/Bundle;)V").
func Ref(class, name, sig string) MethodRef {
	return MethodRef(class + "->" + name + sig)
}
