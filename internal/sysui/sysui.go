// Package sysui simulates the System UI process: the notification drawer,
// the status bar, and — critically for the paper — the lifecycle of the
// overlay-alert notification. When the System Server reports that an app
// put an overlay in the foreground, System UI constructs the notification
// view (taking Tv), then plays the 360 ms slide-down animation under
// FastOutSlowIn easing via startTopAnimation(). If the overlay disappears
// mid-animation, System UI stops the slide and plays it "in a reverse way".
//
// Each alert's visual history is classified into the paper's five outcomes
// (Fig. 6):
//
//	Λ1 — nothing of the view ever rendered (the attacker's goal)
//	Λ2 — the view was partially visible
//	Λ3 — the view completed but no message or icon was drawn
//	Λ4 — the message was partially drawn
//	Λ5 — message and icon fully drawn (the defense's goal)
package sysui

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/anim"
	"repro/internal/binder"
	"repro/internal/simclock"
	"repro/internal/simrand"
)

// Binder methods served by System UI.
const (
	// MethodPostOverlayAlert asks System UI to show the "displaying over
	// other apps" notification for the payload app (binder.ProcessID).
	MethodPostOverlayAlert = "postOverlayAlert"
	// MethodRemoveOverlayAlert asks System UI to remove that alert.
	MethodRemoveOverlayAlert = "removeOverlayAlert"
)

// Message rendering model: after the view container completes, text layout
// takes MessageLayoutDelay before the first glyph appears, then the
// message draws over MessageRenderDuration; the icon appears when the
// message finishes. The paper observes that message and icon render only
// after the view container is fully drawn (the Λ3 regime of Fig. 6).
const (
	MessageLayoutDelay    = 60 * time.Millisecond
	MessageRenderDuration = 80 * time.Millisecond
)

// Outcome is the paper's Λ classification of how much of an alert a user
// could have seen.
type Outcome int

// The five outcomes of Fig. 6, ordered from invisible to fully rendered.
const (
	Lambda1 Outcome = iota + 1 // no view shown
	Lambda2                    // view partially visible
	Lambda3                    // view complete, no message/icon
	Lambda4                    // message partially drawn
	Lambda5                    // message and icon fully drawn
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Lambda1:
		return "Λ1"
	case Lambda2:
		return "Λ2"
	case Lambda3:
		return "Λ3"
	case Lambda4:
		return "Λ4"
	case Lambda5:
		return "Λ5"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Episode records one alert's life: posted when an app's overlay count went
// 0→1, removed when it returned to 0 (or never, if the attack failed).
type Episode struct {
	// App is the process the alert warned about.
	App binder.ProcessID
	// PostedAt is when System UI received the post request.
	PostedAt time.Duration
	// RemovedAt is when the alert finished retracting; zero if still
	// active.
	RemovedAt time.Duration
	// PeakCompleteness is the maximum slide-down progress rendered.
	PeakCompleteness float64
	// PeakVisiblePx is the maximum number of view pixels rendered.
	PeakVisiblePx int
	// MessageProgress is how much of the message text was drawn, 0..1.
	MessageProgress float64
	// IconShown reports whether the notification icon rendered (Λ5).
	IconShown bool
	// Active reports whether the alert is still in the drawer.
	Active bool
}

// messageVisibleThreshold is the minimum fraction of the message that must
// have rendered before a user could read any of it; below this the episode
// still counts as Λ3 (view visible, "no message or icon is displayed").
const messageVisibleThreshold = 0.05

// Classify maps the episode's peak visual state to a Λ outcome.
func (e Episode) Classify() Outcome {
	switch {
	case e.IconShown && e.MessageProgress >= 1:
		return Lambda5
	case e.MessageProgress >= messageVisibleThreshold:
		return Lambda4
	case e.PeakCompleteness >= 1:
		return Lambda3
	case e.PeakVisiblePx > 0:
		return Lambda2
	default:
		return Lambda1
	}
}

// Config configures the System UI simulation.
type Config struct {
	// Clock drives animations; required.
	Clock *simclock.Clock
	// Bus registers the System UI endpoint; required.
	Bus *binder.Bus
	// RNG samples Tv; required.
	RNG *simrand.Source
	// Tv is the notification-view construction latency distribution.
	Tv simrand.Dist
	// NotifViewHeightPx is the alert view height in pixels; required
	// positive.
	NotifViewHeightPx int
	// FrameInterval overrides the animation refresh interval; zero
	// selects the 10 ms default.
	FrameInterval time.Duration
	// SlideDuration overrides the slide-down animation duration; zero
	// selects the stock 360 ms. The ablation experiments shorten it to
	// show that the slow-in animation *is* the vulnerability.
	SlideDuration time.Duration
	// StatusBarIconSlots is how many notification icons fit in the
	// status bar (4 on the paper's Pixel 2).
	StatusBarIconSlots int
	// EpisodeHistory caps how many finished episodes are retained for
	// inspection; aggregates (counts, worst outcome) are exact
	// regardless. Zero selects 4096; long attack soaks would otherwise
	// accumulate one episode per draw-and-destroy cycle forever.
	EpisodeHistory int
	// FrameFault, if non-nil, perturbs the slide animation's frame
	// scheduling (supplied by the fault plane).
	FrameFault anim.FaultFunc
}

// alertState tracks one app's active alert.
type alertState struct {
	episode  *Episode
	buildEv  *simclock.Event // pending view construction
	slide    *anim.Animation
	msgStart time.Duration // when message rendering began; -1 if not yet
	msgEv    *simclock.Event
	iconEv   *simclock.Event
}

// SystemUI is the System UI process model.
type SystemUI struct {
	clock *simclock.Clock
	bus   *binder.Bus
	rng   *simrand.Source
	cfg   Config

	alerts   map[binder.ProcessID]*alertState
	episodes []*Episode
	icons    []binder.ProcessID // status-bar icons in display order

	// Exact aggregates over all episodes ever, independent of trimming.
	episodesTotal uint64
	worstEver     Outcome

	// onViolation receives internal-consistency breaches; with none
	// installed they are recorded in violations. Either way the process
	// degrades instead of crashing.
	onViolation func(rule, detail string)
	violations  []string
}

// SetViolationHandler installs fn to receive internal-consistency
// breaches (the invariant monitor wires itself in here). A nil fn reverts
// to internal recording (Violations).
func (ui *SystemUI) SetViolationHandler(fn func(rule, detail string)) { ui.onViolation = fn }

// Violations returns breaches recorded while no handler was installed.
func (ui *SystemUI) Violations() []string {
	out := make([]string, len(ui.violations))
	copy(out, ui.violations)
	return out
}

func (ui *SystemUI) violation(rule, detail string) {
	if ui.onViolation != nil {
		ui.onViolation(rule, detail)
		return
	}
	ui.violations = append(ui.violations, rule+": "+detail)
}

// New builds and registers the System UI endpoint on the bus.
func New(cfg Config) (*SystemUI, error) {
	if cfg.Clock == nil {
		return nil, errors.New("sysui: nil clock")
	}
	if cfg.Bus == nil {
		return nil, errors.New("sysui: nil bus")
	}
	if cfg.RNG == nil {
		return nil, errors.New("sysui: nil rng")
	}
	if cfg.NotifViewHeightPx <= 0 {
		return nil, fmt.Errorf("sysui: non-positive notification view height %d", cfg.NotifViewHeightPx)
	}
	if cfg.FrameInterval == 0 {
		cfg.FrameInterval = anim.DefaultFrameInterval
	}
	if cfg.SlideDuration == 0 {
		cfg.SlideDuration = anim.NotificationSlideDuration
	}
	if cfg.SlideDuration < 0 {
		return nil, fmt.Errorf("sysui: negative slide duration %v", cfg.SlideDuration)
	}
	if cfg.StatusBarIconSlots == 0 {
		cfg.StatusBarIconSlots = 4
	}
	if cfg.EpisodeHistory == 0 {
		cfg.EpisodeHistory = 4096
	}
	if cfg.EpisodeHistory < 0 {
		return nil, fmt.Errorf("sysui: negative episode history %d", cfg.EpisodeHistory)
	}
	ui := &SystemUI{
		clock:     cfg.Clock,
		bus:       cfg.Bus,
		rng:       cfg.RNG,
		cfg:       cfg,
		alerts:    make(map[binder.ProcessID]*alertState),
		worstEver: Lambda1,
	}
	if err := cfg.Bus.Register(binder.SystemUI, ui.handle); err != nil {
		return nil, fmt.Errorf("sysui: register endpoint: %w", err)
	}
	return ui, nil
}

func (ui *SystemUI) handle(tx binder.Transaction) {
	app, ok := tx.Payload.(binder.ProcessID)
	if !ok {
		return // malformed payload; real Binder would throw, we drop
	}
	switch tx.Method {
	case MethodPostOverlayAlert:
		ui.postAlert(app)
	case MethodRemoveOverlayAlert:
		ui.removeAlert(app)
	}
}

func (ui *SystemUI) postAlert(app binder.ProcessID) {
	if _, exists := ui.alerts[app]; exists {
		return // alert already active for this app
	}
	ep := &Episode{App: app, PostedAt: ui.clock.Now(), Active: true}
	ui.episodes = append(ui.episodes, ep)
	ui.episodesTotal++
	ui.trimEpisodes()
	st := &alertState{episode: ep, msgStart: -1}
	ui.alerts[app] = st
	// Construct the notification view (Tv), then start the slide-down.
	tv := ui.cfg.Tv.Sample(ui.rng)
	st.buildEv = ui.clock.MustAfter(tv, "sysui/buildNotifView", func() {
		st.buildEv = nil
		ui.startSlide(app, st)
	})
}

func (ui *SystemUI) startSlide(app binder.ProcessID, st *alertState) {
	slide, err := anim.New(ui.clock, anim.Config{
		Name:          "sysui/startTopAnimation",
		Duration:      ui.cfg.SlideDuration,
		FrameInterval: ui.cfg.FrameInterval,
		FrameFault:    ui.cfg.FrameFault,
		Interpolator:  anim.FastOutSlowIn(),
		OnFrame: func(v float64) {
			if v > st.episode.PeakCompleteness {
				st.episode.PeakCompleteness = v
			}
			if px := anim.VisiblePixels(ui.cfg.NotifViewHeightPx, v); px > st.episode.PeakVisiblePx {
				st.episode.PeakVisiblePx = px
			}
		},
		OnEnd: func(completed bool) {
			if completed {
				ui.startMessageRender(app, st)
			}
		},
	})
	if err != nil {
		// The slide config is validated at New; record the breach and
		// leave the alert unanimated (it classifies from its zero state).
		ui.violation("sysui-slide", fmt.Sprintf("build slide animation: %v", err))
		return
	}
	st.slide = slide
	if err := slide.Start(); err != nil {
		ui.violation("sysui-slide", fmt.Sprintf("start slide animation: %v", err))
	}
}

func (ui *SystemUI) startMessageRender(app binder.ProcessID, st *alertState) {
	st.msgEv = ui.clock.MustAfter(MessageLayoutDelay, "sysui/layoutMessage", func() {
		st.msgStart = ui.clock.Now()
		st.msgEv = ui.clock.MustAfter(MessageRenderDuration, "sysui/renderMessage", func() {
			st.msgEv = nil
			st.episode.MessageProgress = 1
			st.episode.IconShown = true
			ui.addStatusIcon(app)
		})
	})
}

func (ui *SystemUI) addStatusIcon(app binder.ProcessID) {
	for _, ic := range ui.icons {
		if ic == app {
			return
		}
	}
	ui.icons = append(ui.icons, app)
}

func (ui *SystemUI) removeStatusIcon(app binder.ProcessID) {
	for i, ic := range ui.icons {
		if ic == app {
			ui.icons = append(ui.icons[:i], ui.icons[i+1:]...)
			return
		}
	}
}

func (ui *SystemUI) removeAlert(app binder.ProcessID) {
	st, ok := ui.alerts[app]
	if !ok {
		return
	}
	ep := st.episode
	// Freeze message progress at the interruption point.
	if st.msgStart >= 0 && ep.MessageProgress < 1 {
		frac := float64(ui.clock.Now()-st.msgStart) / float64(MessageRenderDuration)
		if frac > 1 {
			frac = 1
		}
		if frac > ep.MessageProgress {
			ep.MessageProgress = frac
		}
	}
	if st.buildEv != nil {
		ui.clock.Cancel(st.buildEv) // view never constructed: clean Λ1
		st.buildEv = nil
	}
	if st.msgEv != nil {
		ui.clock.Cancel(st.msgEv)
		st.msgEv = nil
	}
	finish := func() {
		ep.RemovedAt = ui.clock.Now()
		ep.Active = false
		if o := ep.Classify(); o > ui.worstEver {
			ui.worstEver = o
		}
		ui.removeStatusIcon(app)
		delete(ui.alerts, app)
	}
	if st.slide != nil && (st.slide.State() == anim.StateRunning || st.slide.Value() > 0) {
		// Retract with the reverse animation; the episode ends when the
		// view is fully off screen.
		slide := st.slide
		if err := slide.ReverseNow(); err != nil {
			// ReverseNow on a running slide cannot fail; report and end
			// the episode at its current visual state.
			ui.violation("sysui-slide", fmt.Sprintf("reverse slide: %v", err))
			finish()
			return
		}
		if slide.State() == anim.StateFinished {
			finish()
			return
		}
		// Poll the reversal end by scheduling at each frame; simpler: we
		// re-wrap OnEnd by watching state via a chained check.
		ui.watchReversal(slide, finish)
		return
	}
	finish()
}

// watchReversal invokes done when the reversing animation finishes. The
// Animation's OnEnd was consumed by the forward pass, so we poll at frame
// granularity — deterministic and cheap on the event clock.
func (ui *SystemUI) watchReversal(a *anim.Animation, done func()) {
	var check func()
	check = func() {
		if a.State() == anim.StateFinished || a.State() == anim.StateCanceled {
			done()
			return
		}
		ui.clock.MustAfter(ui.cfg.FrameInterval, "sysui/watchReversal", check)
	}
	ui.clock.MustAfter(ui.cfg.FrameInterval, "sysui/watchReversal", check)
}

// ActiveAlert reports whether an alert for app is currently in the drawer
// (in any visual state, including still-invisible).
func (ui *SystemUI) ActiveAlert(app binder.ProcessID) bool {
	_, ok := ui.alerts[app]
	return ok
}

// DrawerEntries returns the apps with an alert entry currently listed in
// the notification drawer, in sorted order (ui.alerts is a map, and a
// caller comparing drawers across runs needs a stable listing). An
// entry's *view* renders only as far as its slide-down animation has
// progressed (the paper's Fig. 6 photographs the drawer), so a present
// entry can still be invisible — query AlertVisiblePx for what a user
// would actually see.
func (ui *SystemUI) DrawerEntries() []binder.ProcessID {
	out := make([]binder.ProcessID, 0, len(ui.alerts))
	for app := range ui.alerts {
		out = append(out, app)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AlertVisiblePx reports how many pixels of the app's alert view are
// rendered right now — zero while the entry exists but its animation has
// not yet drawn anything, which is the state the draw-and-destroy attack
// pins the alert in. This is what a user swiping down mid-attack sees.
func (ui *SystemUI) AlertVisiblePx(app binder.ProcessID) int {
	st, ok := ui.alerts[app]
	if !ok || st.slide == nil {
		return 0
	}
	return anim.VisiblePixels(ui.cfg.NotifViewHeightPx, st.slide.Value())
}

// StatusBarIcons returns the apps whose notification icons are visible in
// the status bar, truncated to the device's icon slots.
func (ui *SystemUI) StatusBarIcons() []binder.ProcessID {
	n := len(ui.icons)
	if n > ui.cfg.StatusBarIconSlots {
		n = ui.cfg.StatusBarIconSlots
	}
	out := make([]binder.ProcessID, n)
	copy(out, ui.icons[:n])
	return out
}

// trimEpisodes drops the oldest *finished* episodes beyond the retention
// cap; exact aggregates live in episodesTotal and worstEver.
func (ui *SystemUI) trimEpisodes() {
	for len(ui.episodes) > ui.cfg.EpisodeHistory && !ui.episodes[0].Active {
		ui.episodes[0] = nil
		ui.episodes = ui.episodes[1:]
	}
}

// Episodes returns snapshots of the retained alert episodes in post order
// (the most recent EpisodeHistory ones; see EpisodesTotal for the exact
// lifetime count).
func (ui *SystemUI) Episodes() []Episode {
	out := make([]Episode, len(ui.episodes))
	for i, ep := range ui.episodes {
		out[i] = *ep
	}
	return out
}

// EpisodesTotal reports how many alert episodes were ever posted,
// independent of history trimming.
func (ui *SystemUI) EpisodesTotal() uint64 { return ui.episodesTotal }

// WorstOutcome reports the most visible Λ outcome over all episodes ever —
// the attacker wants this to stay Λ1. Zero episodes yield Lambda1 (nothing
// was ever shown).
func (ui *SystemUI) WorstOutcome() Outcome {
	worst := ui.worstEver
	for _, st := range ui.alerts {
		if o := st.episode.Classify(); o > worst {
			worst = o
		}
	}
	return worst
}
