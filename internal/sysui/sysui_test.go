package sysui

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/simclock"
	"repro/internal/simrand"
)

const evilApp binder.ProcessID = "com.evil.app"

func newUI(t *testing.T) (*SystemUI, *binder.Bus, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	bus, err := binder.NewBus(binder.Config{Clock: clock, RNG: simrand.New(1)})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	ui, err := New(Config{
		Clock:             clock,
		Bus:               bus,
		RNG:               simrand.New(2),
		Tv:                simrand.Constant(8),
		NotifViewHeightPx: 72,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ui, bus, clock
}

func post(t *testing.T, bus *binder.Bus, app binder.ProcessID) {
	t.Helper()
	if _, err := bus.Call(binder.SystemServer, binder.SystemUI, MethodPostOverlayAlert, app); err != nil {
		t.Fatalf("post alert: %v", err)
	}
}

func remove(t *testing.T, bus *binder.Bus, app binder.ProcessID) {
	t.Helper()
	if _, err := bus.Call(binder.SystemServer, binder.SystemUI, MethodRemoveOverlayAlert, app); err != nil {
		t.Fatalf("remove alert: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	clock := simclock.New()
	bus, err := binder.NewBus(binder.Config{Clock: clock, RNG: simrand.New(1)})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if _, err := New(Config{Bus: bus, RNG: simrand.New(1), NotifViewHeightPx: 72}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(Config{Clock: clock, RNG: simrand.New(1), NotifViewHeightPx: 72}); err == nil {
		t.Fatal("nil bus accepted")
	}
	if _, err := New(Config{Clock: clock, Bus: bus, NotifViewHeightPx: 72}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := New(Config{Clock: clock, Bus: bus, RNG: simrand.New(1)}); err == nil {
		t.Fatal("zero view height accepted")
	}
}

// TestAlertRunsToLambda5 lets the alert play out fully: the episode must
// reach Λ5 with the status-bar icon shown.
func TestAlertRunsToLambda5(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	eps := ui.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	ep := eps[0]
	if got := ep.Classify(); got != Lambda5 {
		t.Fatalf("outcome = %v, want Λ5", got)
	}
	if !ep.Active {
		t.Fatal("alert should still be active")
	}
	if ep.PeakVisiblePx != 72 {
		t.Fatalf("peak visible = %d px, want 72", ep.PeakVisiblePx)
	}
	icons := ui.StatusBarIcons()
	if len(icons) != 1 || icons[0] != evilApp {
		t.Fatalf("status icons = %v, want [evil]", icons)
	}
	if !ui.ActiveAlert(evilApp) {
		t.Fatal("ActiveAlert = false")
	}
}

// TestEarlyRemoveYieldsLambda1 removes the alert before the view is even
// constructed (within Tv): nothing renders, Λ1.
func TestEarlyRemoveYieldsLambda1(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	clock.MustAfter(4*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	eps := ui.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	ep := eps[0]
	if got := ep.Classify(); got != Lambda1 {
		t.Fatalf("outcome = %v, want Λ1", got)
	}
	if ep.Active {
		t.Fatal("alert still active after removal")
	}
	if ep.RemovedAt == 0 {
		t.Fatal("RemovedAt not recorded")
	}
	if ui.ActiveAlert(evilApp) {
		t.Fatal("ActiveAlert = true after removal")
	}
}

// TestRemoveDuringInvisibleAnimationYieldsLambda1: the animation has
// started but not yet rendered a visible pixel (first ~30 ms on a 72 px
// view). Removal must still yield Λ1.
func TestRemoveDuringInvisibleAnimationYieldsLambda1(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	// Tv = 8ms, so the animation starts at ~8ms; at 25ms two frames have
	// rendered but ⌊72·completeness⌋ = 0.
	clock.MustAfter(25*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	ep := ui.Episodes()[0]
	if ep.PeakVisiblePx != 0 {
		t.Fatalf("peak visible = %d px, want 0", ep.PeakVisiblePx)
	}
	if got := ep.Classify(); got != Lambda1 {
		t.Fatalf("outcome = %v, want Λ1", got)
	}
}

// TestMidAnimationRemoveYieldsLambda2: removal at 150 ms leaves the view
// partially rendered and then retracts it.
func TestMidAnimationRemoveYieldsLambda2(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	clock.MustAfter(150*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	if err := clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	ep := ui.Episodes()[0]
	if got := ep.Classify(); got != Lambda2 {
		t.Fatalf("outcome = %v (peak %d px, completeness %.3f), want Λ2",
			got, ep.PeakVisiblePx, ep.PeakCompleteness)
	}
	if ep.Active {
		t.Fatal("alert still active after retraction")
	}
	if ep.PeakCompleteness >= 1 {
		t.Fatal("view completed despite mid-animation removal")
	}
}

// TestRemoveAfterViewBeforeMessageYieldsLambda3: removal right after the
// slide completes (Tv+360ms) but before the message renders.
func TestRemoveAfterViewBeforeMessageYieldsLambda3(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	clock.MustAfter(370*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	if err := clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	ep := ui.Episodes()[0]
	if got := ep.Classify(); got != Lambda3 {
		t.Fatalf("outcome = %v (msg %.2f), want Λ3", got, ep.MessageProgress)
	}
}

// TestRemoveDuringMessageYieldsLambda4: removal while the message renders.
func TestRemoveDuringMessageYieldsLambda4(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	// Slide ends at 8+360=368 ms; text layout runs to 428 ms; the
	// message then draws until 508 ms. Remove mid-draw at 460 ms.
	clock.MustAfter(460*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	if err := clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	ep := ui.Episodes()[0]
	if got := ep.Classify(); got != Lambda4 {
		t.Fatalf("outcome = %v (msg %.2f), want Λ4", got, ep.MessageProgress)
	}
	if ep.MessageProgress <= 0 || ep.MessageProgress >= 1 {
		t.Fatalf("message progress = %v, want in (0,1)", ep.MessageProgress)
	}
}

func TestDuplicatePostIgnored(t *testing.T) {
	ui, bus, clock := newUI(t)
	post(t, bus, evilApp)
	post(t, bus, evilApp)
	if err := clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(ui.Episodes()); got != 1 {
		t.Fatalf("episodes = %d, want 1 (duplicate post ignored)", got)
	}
}

func TestRemoveWithoutAlertIgnored(t *testing.T) {
	ui, bus, clock := newUI(t)
	remove(t, bus, evilApp)
	if err := clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(ui.Episodes()) != 0 {
		t.Fatal("phantom episode created")
	}
}

func TestRepeatedCyclesProduceEpisodes(t *testing.T) {
	ui, bus, clock := newUI(t)
	// Three post/early-remove cycles.
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		clock.MustAfter(at, "post", func() { post(t, bus, evilApp) })
		clock.MustAfter(at+5*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	}
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	eps := ui.Episodes()
	if len(eps) != 3 {
		t.Fatalf("episodes = %d, want 3", len(eps))
	}
	if got := ui.WorstOutcome(); got != Lambda1 {
		t.Fatalf("WorstOutcome = %v, want Λ1", got)
	}
}

func TestWorstOutcomeAggregates(t *testing.T) {
	ui, bus, clock := newUI(t)
	// Episode 1: early removal (Λ1). Episode 2: plays to Λ5.
	post(t, bus, evilApp)
	clock.MustAfter(5*time.Millisecond, "rm", func() { remove(t, bus, evilApp) })
	clock.MustAfter(100*time.Millisecond, "post2", func() { post(t, bus, "other.app") })
	if err := clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := ui.WorstOutcome(); got != Lambda5 {
		t.Fatalf("WorstOutcome = %v, want Λ5", got)
	}
}

func TestStatusBarIconSlotsCap(t *testing.T) {
	ui, bus, clock := newUI(t)
	apps := []binder.ProcessID{"a", "b", "c", "d", "e", "f"}
	for _, app := range apps {
		post(t, bus, app)
	}
	if err := clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(ui.StatusBarIcons()); got != 4 {
		t.Fatalf("status bar icons = %d, want 4 (slot cap)", got)
	}
}

// TestEpisodeHistoryBounded is the soak property: a long draw-and-destroy
// run keeps memory bounded while the aggregates stay exact.
func TestEpisodeHistoryBounded(t *testing.T) {
	clock := simclock.New()
	bus, err := binder.NewBus(binder.Config{Clock: clock, RNG: simrand.New(1), LogLimit: 64})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	ui, err := New(Config{
		Clock: clock, Bus: bus, RNG: simrand.New(2),
		Tv: simrand.Constant(8), NotifViewHeightPx: 72,
		EpisodeHistory: 16,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const cycles = 200
	for i := 0; i < cycles; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		clock.MustAfter(at, "post", func() { post(t, bus, evilApp) })
		clock.MustAfter(at+5*time.Millisecond, "remove", func() { remove(t, bus, evilApp) })
	}
	if err := clock.RunFor(time.Duration(cycles)*50*time.Millisecond + 5*time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(ui.Episodes()); got > 16 {
		t.Fatalf("retained %d episodes, cap 16", got)
	}
	if got := ui.EpisodesTotal(); got != cycles {
		t.Fatalf("EpisodesTotal = %d, want %d", got, cycles)
	}
	if got := ui.WorstOutcome(); got != Lambda1 {
		t.Fatalf("WorstOutcome = %v, want Λ1 (exact across trimming)", got)
	}
}

func TestNegativeEpisodeHistoryRejected(t *testing.T) {
	clock := simclock.New()
	bus, err := binder.NewBus(binder.Config{Clock: clock, RNG: simrand.New(1)})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if _, err := New(Config{
		Clock: clock, Bus: bus, RNG: simrand.New(2),
		Tv: simrand.Constant(8), NotifViewHeightPx: 72,
		EpisodeHistory: -1,
	}); err == nil {
		t.Fatal("negative history accepted")
	}
}

func TestDrawerEntries(t *testing.T) {
	ui, bus, clock := newUI(t)
	if got := ui.DrawerEntries(); len(got) != 0 {
		t.Fatalf("drawer = %v, want empty", got)
	}
	post(t, bus, evilApp)
	post(t, bus, "other.app")
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(ui.DrawerEntries()); got != 2 {
		t.Fatalf("drawer entries = %d, want 2", got)
	}
	remove(t, bus, evilApp)
	if err := clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	got := ui.DrawerEntries()
	if len(got) != 1 || got[0] != "other.app" {
		t.Fatalf("drawer = %v, want [other.app]", got)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Lambda1, "Λ1"}, {Lambda2, "Λ2"}, {Lambda3, "Λ3"},
		{Lambda4, "Λ4"}, {Lambda5, "Λ5"}, {Outcome(9), "Outcome(9)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestOutcomeOrdering(t *testing.T) {
	if !(Lambda1 < Lambda2 && Lambda2 < Lambda3 && Lambda3 < Lambda4 && Lambda4 < Lambda5) {
		t.Fatal("Λ outcomes not ordered")
	}
}

func TestMalformedPayloadIgnored(t *testing.T) {
	ui, bus, clock := newUI(t)
	if _, err := bus.Call(binder.SystemServer, binder.SystemUI, MethodPostOverlayAlert, 42); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(ui.Episodes()) != 0 {
		t.Fatal("malformed payload created an episode")
	}
}
