package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Fatalf("Mean = (%v,%v), want 2.5", got, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestStddev(t *testing.T) {
	got, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Stddev: %v", err)
	}
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("Stddev = %v, want ≈2.138", got)
	}
	if _, err := Stddev([]float64{1}); err == nil {
		t.Fatal("Stddev of single sample accepted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty sample accepted")
	}
	// Single element: every percentile is that element.
	if got, err := Percentile([]float64{7}, 83); err != nil || got != 7 {
		t.Fatalf("Percentile single = (%v,%v)", got, err)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 50)
	if err != nil || got != 5 {
		t.Fatalf("Percentile = (%v,%v), want 5", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestBox(t *testing.T) {
	bp, err := Box([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Box: %v", err)
	}
	if bp.Min != 1 || bp.Median != 3 || bp.Max != 5 || bp.Mean != 3 || bp.N != 5 {
		t.Fatalf("Box = %+v", bp)
	}
	if bp.Q1 != 2 || bp.Q3 != 4 {
		t.Fatalf("quartiles = %v,%v", bp.Q1, bp.Q3)
	}
	if _, err := Box(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Box(nil) accepted")
	}
	if s := bp.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 99}, 0, 3, 3)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	want := []int{2, 2, 2} // -1 clamps to bin 0, 99 clamps to bin 2
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := Histogram(nil, 2, 1, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(44, 50); got != 88 {
		t.Fatalf("Ratio = %v, want 88", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio with zero total = %v, want 0", got)
	}
}

// Property: box plot numbers are ordered min ≤ q1 ≤ median ≤ q3 ≤ max and
// bracket the mean.
func TestPropertyBoxOrdered(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		bp, err := Box(xs)
		if err != nil {
			return false
		}
		ordered := bp.Min <= bp.Q1 && bp.Q1 <= bp.Median && bp.Median <= bp.Q3 && bp.Q3 <= bp.Max
		bracket := bp.Mean >= bp.Min && bp.Mean <= bp.Max
		return ordered && bracket
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and matches sort order extremes.
func TestPropertyPercentileMonotone(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		lo, err1 := Percentile(xs, 0)
		hi, err2 := Percentile(xs, 100)
		return err1 == nil && err2 == nil && lo == sorted[0] && hi == sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
