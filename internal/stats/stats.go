// Package stats provides the small summary-statistics toolkit the
// experiment harness uses to report results the way the paper does:
// means, standard deviations, percentiles and box-plot five-number
// summaries (Fig. 7 is a box plot over 30 participants).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean computes the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Stddev computes the sample standard deviation (n−1 denominator).
func Stddev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Percentile computes the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// BoxPlot is a five-number summary plus the mean, the shape of each column
// of the paper's Fig. 7.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes the five-number summary of a sample.
func Box(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	var (
		bp  BoxPlot
		err error
	)
	if bp.Min, err = Percentile(xs, 0); err != nil {
		return BoxPlot{}, err
	}
	if bp.Q1, err = Percentile(xs, 25); err != nil {
		return BoxPlot{}, err
	}
	if bp.Median, err = Percentile(xs, 50); err != nil {
		return BoxPlot{}, err
	}
	if bp.Q3, err = Percentile(xs, 75); err != nil {
		return BoxPlot{}, err
	}
	if bp.Max, err = Percentile(xs, 100); err != nil {
		return BoxPlot{}, err
	}
	if bp.Mean, err = Mean(xs); err != nil {
		return BoxPlot{}, err
	}
	bp.N = len(xs)
	return bp, nil
}

// String renders the summary compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("min %.1f  q1 %.1f  med %.1f  q3 %.1f  max %.1f  mean %.1f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.N)
}

// Histogram counts xs into nbins equal-width bins over [lo, hi); values
// outside the range clamp to the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: non-positive bin count %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: empty range [%v,%v)", lo, hi)
	}
	bins := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins, nil
}

// Ratio formats a count as a percentage of a total.
func Ratio(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(count) / float64(total)
}
