// Package wm implements the window-management core of the simulated
// Android stack: window types and z-ordering, the SYSTEM_ALERT_WINDOW
// permission gate, the post-Android-8 built-in defenses (TYPE_TOAST
// removal, Settings-app protection), per-app foreground-overlay accounting
// (which drives the notification alert), and gesture-level touch dispatch.
//
// Touch dispatch follows real Android semantics that matter to the paper:
// a gesture is bound to the window that received its DOWN event; if that
// window is removed mid-gesture the remainder of the gesture is CANCELed.
// The draw-and-destroy overlay attack therefore loses ("mistouches") any
// gesture that straddles an overlay swap — the effect measured in Figs. 7
// and 8.
package wm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
)

// WindowType classifies a window; it determines the z-layer.
type WindowType int

// Window types. Toast windows sit above application overlays but are never
// touchable, so a touch aimed at a toast falls through to the topmost
// touchable window beneath it — the mechanism the password-stealing attack
// exploits by stacking transparent overlays under a fake-keyboard toast.
const (
	TypeActivity WindowType = iota + 1
	TypeInputMethod
	TypeApplicationOverlay
	TypeToast
	// TypeLegacyToast is the pre-Android-8 TYPE_TOAST window an app could
	// add directly; AddWindow rejects it (the built-in defense).
	TypeLegacyToast
)

// Layer reports the base z-layer of the type; higher layers render on top.
func (t WindowType) Layer() int {
	switch t {
	case TypeActivity:
		return 1000
	case TypeInputMethod:
		return 2000
	case TypeApplicationOverlay:
		return 3000
	case TypeToast, TypeLegacyToast:
		return 3500
	default:
		return 0
	}
}

// String renders the type for diagnostics.
func (t WindowType) String() string {
	switch t {
	case TypeActivity:
		return "activity"
	case TypeInputMethod:
		return "ime"
	case TypeApplicationOverlay:
		return "overlay"
	case TypeToast:
		return "toast"
	case TypeLegacyToast:
		return "legacy-toast"
	default:
		return fmt.Sprintf("WindowType(%d)", int(t))
	}
}

// Flags modify window behaviour.
type Flags uint32

// Window flags mirroring the Android ones the paper discusses.
const (
	// FlagNotTouchable makes touches pass through (the clickjacking
	// overlay variant).
	FlagNotTouchable Flags = 1 << iota
	// FlagTransparent marks the window visually transparent; it has no
	// effect on touch routing.
	FlagTransparent
)

// Has reports whether all bits in q are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

// WindowID identifies an attached window.
type WindowID uint64

// TouchAction enumerates touch event actions.
type TouchAction int

// Touch actions following android.view.MotionEvent.
const (
	ActionDown TouchAction = iota + 1
	ActionUp
	ActionCancel
)

// String renders the action for diagnostics.
func (a TouchAction) String() string {
	switch a {
	case ActionDown:
		return "down"
	case ActionUp:
		return "up"
	case ActionCancel:
		return "cancel"
	default:
		return fmt.Sprintf("TouchAction(%d)", int(a))
	}
}

// TouchEvent is one motion event delivered to a window.
type TouchEvent struct {
	// Gesture identifies the gesture this event belongs to.
	Gesture uint64
	// Action is down, up or cancel.
	Action TouchAction
	// Pos is the screen position in pixels.
	Pos geom.Point
	// At is the virtual delivery time.
	At time.Duration
}

// TouchHandler receives events for a window.
type TouchHandler func(ev TouchEvent)

// Spec describes a window to add.
type Spec struct {
	// Owner is the process adding the window.
	Owner binder.ProcessID
	// Type classifies the window; required.
	Type WindowType
	// Bounds is the screen rectangle; must be non-empty.
	Bounds geom.Rect
	// Flags modify behaviour.
	Flags Flags
	// OnTouch receives the window's touch events; may be nil for
	// windows that ignore input.
	OnTouch TouchHandler
}

// Window is an attached window. Fields are read-only snapshots; mutate via
// Manager methods.
type Window struct {
	ID      WindowID
	Owner   binder.ProcessID
	Type    WindowType
	Bounds  geom.Rect
	Flags   Flags
	Alpha   float64
	AddedAt time.Duration
	Hidden  bool // forced-hidden by Settings protection

	onTouch TouchHandler
}

// Touchable reports whether the window can receive touch events right now.
// Toast windows never receive touches (Android guarantees the underlying
// activity stays interactive under a toast).
func (w *Window) Touchable() bool {
	if w.Hidden {
		return false
	}
	if w.Type == TypeToast || w.Type == TypeLegacyToast {
		return false
	}
	return !w.Flags.Has(FlagNotTouchable)
}

// Errors returned by the Manager.
var (
	// ErrNoPermission indicates the app lacks SYSTEM_ALERT_WINDOW.
	ErrNoPermission = errors.New("wm: SYSTEM_ALERT_WINDOW permission not granted")
	// ErrTypeToastRemoved indicates an app tried to add a TYPE_TOAST
	// window directly, which Android 8 removed.
	ErrTypeToastRemoved = errors.New("wm: TYPE_TOAST windows were removed in Android 8.0")
	// ErrProtectedForeground indicates the Settings app is granting
	// permissions and overlays are disallowed.
	ErrProtectedForeground = errors.New("wm: overlays disallowed while Settings grants permissions")
	// ErrUnknownWindow indicates the window id is not attached.
	ErrUnknownWindow = errors.New("wm: unknown window")
)

// OverlayCountListener observes per-app foreground-overlay count changes;
// the Notification Manager uses the 0↔1 transitions to post and remove the
// overlay alert.
type OverlayCountListener func(app binder.ProcessID, old, new int)

// WindowEventKind classifies window lifecycle events.
type WindowEventKind int

// Window lifecycle events.
const (
	WindowAdded WindowEventKind = iota + 1
	WindowRemoved
)

// String renders the kind.
func (k WindowEventKind) String() string {
	switch k {
	case WindowAdded:
		return "added"
	case WindowRemoved:
		return "removed"
	default:
		return fmt.Sprintf("WindowEventKind(%d)", int(k))
	}
}

// WindowEvent is one window attach/detach, observed by tracers.
type WindowEvent struct {
	Kind   WindowEventKind
	Window Window
	At     time.Duration
}

// WindowEventListener observes window lifecycle events.
type WindowEventListener func(ev WindowEvent)

// Manager is the window-management state machine. It is single-threaded on
// the simulation clock.
type Manager struct {
	clock  *simclock.Clock
	screen geom.Rect

	nextID   WindowID
	windows  map[WindowID]*Window
	order    []*Window // kept sorted by (layer, AddedAt, ID)
	perms    map[binder.ProcessID]bool
	overlays map[binder.ProcessID]int

	protected       bool
	countListeners  []OverlayCountListener
	windowListeners []WindowEventListener

	// onViolation receives internal-consistency breaches (overlay count
	// underflow, failed forced removals). With no handler installed the
	// breach is recorded in violations; the state is clamped either way so
	// a faulted run degrades instead of crashing.
	onViolation func(rule, detail string)
	violations  []string

	nextGesture uint64
	gestures    map[uint64]*gesture

	stats Stats
}

type gesture struct {
	id     uint64
	target WindowID
	downAt time.Duration
	done   bool
}

// Stats counts dispatch outcomes for the experiment harness.
type Stats struct {
	// Gestures is the number of gestures begun.
	Gestures uint64
	// Missed is the number of gestures whose DOWN found no touchable
	// window at the position.
	Missed uint64
	// Canceled is the number of gestures canceled because their target
	// window was removed mid-gesture.
	Canceled uint64
	// Completed is the number of gestures that delivered both DOWN and
	// UP to the same window.
	Completed uint64
}

// NewManager creates a Manager for a screen rectangle.
func NewManager(clock *simclock.Clock, screen geom.Rect) (*Manager, error) {
	if clock == nil {
		return nil, errors.New("wm: nil clock")
	}
	if screen.Empty() {
		return nil, fmt.Errorf("wm: empty screen rect %v", screen)
	}
	return &Manager{
		clock:    clock,
		screen:   screen,
		windows:  make(map[WindowID]*Window),
		perms:    make(map[binder.ProcessID]bool),
		overlays: make(map[binder.ProcessID]int),
		gestures: make(map[uint64]*gesture),
	}, nil
}

// Screen reports the screen rectangle.
func (m *Manager) Screen() geom.Rect { return m.screen }

// SetViolationHandler installs fn to receive internal-consistency
// breaches; the invariant monitor uses this to collect them with an
// event-time trace. A nil fn reverts to internal recording (Violations).
func (m *Manager) SetViolationHandler(fn func(rule, detail string)) { m.onViolation = fn }

// Violations returns breaches recorded while no violation handler was
// installed.
func (m *Manager) Violations() []string {
	out := make([]string, len(m.violations))
	copy(out, m.violations)
	return out
}

func (m *Manager) violation(rule, detail string) {
	if m.onViolation != nil {
		m.onViolation(rule, detail)
		return
	}
	m.violations = append(m.violations, rule+": "+detail)
}

// Stats reports dispatch counters.
func (m *Manager) Stats() Stats { return m.stats }

// GrantOverlayPermission grants SYSTEM_ALERT_WINDOW to an app.
func (m *Manager) GrantOverlayPermission(app binder.ProcessID) { m.perms[app] = true }

// RevokeOverlayPermission revokes SYSTEM_ALERT_WINDOW; attached overlays of
// the app are removed immediately (what the user achieves via Settings
// after pressing the alert).
func (m *Manager) RevokeOverlayPermission(app binder.ProcessID) {
	delete(m.perms, app)
	for _, w := range m.windowsOf(app, TypeApplicationOverlay) {
		// Removal of an attached window cannot fail; report (not crash)
		// if bookkeeping ever disagrees.
		if err := m.RemoveWindow(w.ID); err != nil {
			m.violation("wm-revoke-removal", err.Error())
		}
	}
}

// HasOverlayPermission reports whether the app holds SYSTEM_ALERT_WINDOW.
func (m *Manager) HasOverlayPermission(app binder.ProcessID) bool { return m.perms[app] }

// SetProtectedForeground toggles the Android ≥ 8 defense that forbids any
// overlay from covering the Settings app while it grants permissions (and
// the package installer). Entering protection hides attached overlays;
// leaving restores them.
func (m *Manager) SetProtectedForeground(on bool) {
	m.protected = on
	for _, w := range m.order {
		if w.Type == TypeApplicationOverlay {
			w.Hidden = on
		}
	}
}

// ProtectedForeground reports whether the protected mode is active.
func (m *Manager) ProtectedForeground() bool { return m.protected }

// OnOverlayCountChange registers a listener for per-app overlay-count
// transitions.
func (m *Manager) OnOverlayCountChange(fn OverlayCountListener) {
	if fn != nil {
		m.countListeners = append(m.countListeners, fn)
	}
}

// OnWindowEvent registers a listener for window attach/detach events.
func (m *Manager) OnWindowEvent(fn WindowEventListener) {
	if fn != nil {
		m.windowListeners = append(m.windowListeners, fn)
	}
}

func (m *Manager) notifyWindow(kind WindowEventKind, w Window) {
	for _, fn := range m.windowListeners {
		fn(WindowEvent{Kind: kind, Window: w, At: m.clock.Now()})
	}
}

// AddWindow attaches a window, enforcing the built-in defenses. It returns
// the new window id.
func (m *Manager) AddWindow(spec Spec) (WindowID, error) {
	if spec.Owner == "" {
		return 0, errors.New("wm: empty owner")
	}
	if spec.Bounds.Empty() {
		return 0, fmt.Errorf("wm: empty window bounds %v", spec.Bounds)
	}
	switch spec.Type {
	case TypeLegacyToast:
		return 0, ErrTypeToastRemoved
	case TypeApplicationOverlay:
		if !m.perms[spec.Owner] {
			return 0, ErrNoPermission
		}
		if m.protected {
			return 0, ErrProtectedForeground
		}
	case TypeActivity, TypeInputMethod:
		// always allowed
	case TypeToast:
		return 0, errors.New("wm: toast windows must be added by the notification manager (use AddToastWindow)")
	default:
		return 0, fmt.Errorf("wm: invalid window type %v", spec.Type)
	}
	return m.attach(spec), nil
}

// AddToastWindow attaches a toast window on behalf of the Notification
// Manager Service. Apps cannot call this path directly; the NMS serializes
// and caps toast display.
func (m *Manager) AddToastWindow(spec Spec) (WindowID, error) {
	if spec.Owner == "" {
		return 0, errors.New("wm: empty owner")
	}
	if spec.Bounds.Empty() {
		return 0, fmt.Errorf("wm: empty toast bounds %v", spec.Bounds)
	}
	spec.Type = TypeToast
	return m.attach(spec), nil
}

func (m *Manager) attach(spec Spec) WindowID {
	m.nextID++
	w := &Window{
		ID:      m.nextID,
		Owner:   spec.Owner,
		Type:    spec.Type,
		Bounds:  spec.Bounds,
		Flags:   spec.Flags,
		Alpha:   1,
		AddedAt: m.clock.Now(),
		onTouch: spec.OnTouch,
	}
	m.windows[w.ID] = w
	m.order = append(m.order, w)
	m.sortOrder()
	m.notifyWindow(WindowAdded, *w)
	if w.Type == TypeApplicationOverlay {
		old := m.overlays[w.Owner]
		m.overlays[w.Owner] = old + 1
		m.notifyCount(w.Owner, old, old+1)
	}
	return w.ID
}

func (m *Manager) sortOrder() {
	sort.SliceStable(m.order, func(i, j int) bool {
		li, lj := m.order[i].Type.Layer(), m.order[j].Type.Layer()
		if li != lj {
			return li < lj
		}
		if m.order[i].AddedAt != m.order[j].AddedAt {
			return m.order[i].AddedAt < m.order[j].AddedAt
		}
		return m.order[i].ID < m.order[j].ID
	})
}

// RemoveWindow detaches a window. Any in-flight gesture bound to it is
// canceled (the app receives ACTION_CANCEL).
func (m *Manager) RemoveWindow(id WindowID) error {
	w, ok := m.windows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownWindow, id)
	}
	delete(m.windows, id)
	for i, ow := range m.order {
		if ow.ID == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	for _, g := range m.gestures {
		if g.target == id && !g.done {
			g.done = true
			m.stats.Canceled++
			if w.onTouch != nil {
				w.onTouch(TouchEvent{Gesture: g.id, Action: ActionCancel, At: m.clock.Now()})
			}
		}
	}
	m.notifyWindow(WindowRemoved, *w)
	if w.Type == TypeApplicationOverlay {
		old := m.overlays[w.Owner]
		if old <= 0 {
			// DESIGN §6: per-app overlay counts never go negative. Report
			// the breach and clamp at zero so the run degrades gracefully.
			m.violation("overlay-count-negative", fmt.Sprintf("remove of %q would take count %d below zero", w.Owner, old))
			m.notifyCount(w.Owner, old, old-1)
			return nil
		}
		m.overlays[w.Owner] = old - 1
		if old-1 == 0 {
			delete(m.overlays, w.Owner)
		}
		m.notifyCount(w.Owner, old, old-1)
	}
	return nil
}

func (m *Manager) notifyCount(app binder.ProcessID, old, new int) {
	for _, fn := range m.countListeners {
		fn(app, old, new)
	}
}

// SetAlpha updates a window's rendered opacity (used by toast fade
// animations). Alpha is clamped to [0,1].
func (m *Manager) SetAlpha(id WindowID, alpha float64) error {
	w, ok := m.windows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownWindow, id)
	}
	switch {
	case alpha < 0:
		w.Alpha = 0
	case alpha > 1:
		w.Alpha = 1
	default:
		w.Alpha = alpha
	}
	return nil
}

// Get returns a snapshot of the window, or false if not attached.
func (m *Manager) Get(id WindowID) (Window, bool) {
	w, ok := m.windows[id]
	if !ok {
		return Window{}, false
	}
	return *w, true
}

// Attached reports whether the window id is attached.
func (m *Manager) Attached(id WindowID) bool {
	_, ok := m.windows[id]
	return ok
}

// OverlayCount reports the app's current foreground overlay count.
func (m *Manager) OverlayCount(app binder.ProcessID) int { return m.overlays[app] }

// WindowCount reports the total number of attached windows.
func (m *Manager) WindowCount() int { return len(m.order) }

// ZOrder returns snapshots of every attached window bottom-to-top; the
// invariant monitor checks the DESIGN §6 z-order consistency rule
// (non-decreasing layer, FIFO within a layer) against it.
func (m *Manager) ZOrder() []Window {
	out := make([]Window, len(m.order))
	for i, w := range m.order {
		out[i] = *w
	}
	return out
}

func (m *Manager) windowsOf(app binder.ProcessID, t WindowType) []*Window {
	var out []*Window
	for _, w := range m.order {
		if w.Owner == app && w.Type == t {
			out = append(out, w)
		}
	}
	return out
}

// WindowsOf returns snapshots of the app's windows of type t in z-order.
func (m *Manager) WindowsOf(app binder.ProcessID, t WindowType) []Window {
	ws := m.windowsOf(app, t)
	out := make([]Window, len(ws))
	for i, w := range ws {
		out[i] = *w
	}
	return out
}

// TopWindowAt returns the topmost window containing p, optionally
// restricted to touchable windows. ok is false when nothing matches.
func (m *Manager) TopWindowAt(p geom.Point, touchableOnly bool) (Window, bool) {
	for i := len(m.order) - 1; i >= 0; i-- {
		w := m.order[i]
		if w.Hidden || !w.Bounds.Contains(p) {
			continue
		}
		if touchableOnly && !w.Touchable() {
			continue
		}
		return *w, true
	}
	return Window{}, false
}

// TopToastAlpha reports the maximum alpha among the app's attached toast
// windows; 0 when none. The flicker analyzer samples this to decide whether
// the fake keyboard ever visibly dimmed.
func (m *Manager) TopToastAlpha(app binder.ProcessID) float64 {
	maxAlpha := 0.0
	for _, w := range m.order {
		if w.Owner == app && w.Type == TypeToast && !w.Hidden && w.Alpha > maxAlpha {
			maxAlpha = w.Alpha
		}
	}
	return maxAlpha
}

// BeginGesture delivers a DOWN at p and binds the gesture to the topmost
// touchable window there. It returns the gesture id and the target window;
// ok is false when no touchable window contains p (the touch goes to the
// raw activity surface or is lost — a "mistouch" from the attacker's view).
func (m *Manager) BeginGesture(p geom.Point) (id uint64, target Window, ok bool) {
	m.stats.Gestures++
	m.nextGesture++
	gid := m.nextGesture
	top, found := m.TopWindowAt(p, true)
	if !found {
		m.stats.Missed++
		m.gestures[gid] = &gesture{id: gid, done: true}
		return gid, Window{}, false
	}
	m.gestures[gid] = &gesture{id: gid, target: top.ID, downAt: m.clock.Now()}
	if w := m.windows[top.ID]; w.onTouch != nil {
		w.onTouch(TouchEvent{Gesture: gid, Action: ActionDown, Pos: p, At: m.clock.Now()})
	}
	return gid, top, true
}

// EndGesture delivers the UP at p for a gesture begun earlier. If the
// target window was removed in between, the gesture was already canceled
// and EndGesture reports completed=false.
func (m *Manager) EndGesture(id uint64, p geom.Point) (completed bool, err error) {
	g, ok := m.gestures[id]
	if !ok {
		return false, fmt.Errorf("wm: unknown gesture %d", id)
	}
	delete(m.gestures, id)
	if g.done {
		return false, nil
	}
	g.done = true
	w, attached := m.windows[g.target]
	if !attached {
		// RemoveWindow cancels gestures eagerly, so this is unreachable,
		// but guard anyway.
		m.stats.Canceled++
		return false, nil
	}
	m.stats.Completed++
	if w.onTouch != nil {
		w.onTouch(TouchEvent{Gesture: id, Action: ActionUp, Pos: p, At: m.clock.Now()})
	}
	return true, nil
}
