package wm

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
)

const (
	evilApp   binder.ProcessID = "com.evil.app"
	victimApp binder.ProcessID = "com.bank.app"
)

func screen() geom.Rect { return geom.RectWH(0, 0, 1080, 1920) }

func newMgr(t *testing.T) (*Manager, *simclock.Clock) {
	t.Helper()
	c := simclock.New()
	m, err := NewManager(c, screen())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m, c
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, screen()); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewManager(simclock.New(), geom.Rect{}); err == nil {
		t.Fatal("empty screen accepted")
	}
}

func TestAddWindowValidation(t *testing.T) {
	m, _ := newMgr(t)
	if _, err := m.AddWindow(Spec{Type: TypeActivity, Bounds: screen()}); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := m.AddWindow(Spec{Owner: victimApp, Type: TypeActivity}); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := m.AddWindow(Spec{Owner: victimApp, Type: WindowType(99), Bounds: screen()}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestOverlayRequiresPermission(t *testing.T) {
	m, _ := newMgr(t)
	spec := Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()}
	if _, err := m.AddWindow(spec); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("err = %v, want ErrNoPermission", err)
	}
	m.GrantOverlayPermission(evilApp)
	if !m.HasOverlayPermission(evilApp) {
		t.Fatal("permission not recorded")
	}
	if _, err := m.AddWindow(spec); err != nil {
		t.Fatalf("AddWindow after grant: %v", err)
	}
}

func TestLegacyToastRejected(t *testing.T) {
	m, _ := newMgr(t)
	_, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeLegacyToast, Bounds: screen()})
	if !errors.Is(err, ErrTypeToastRemoved) {
		t.Fatalf("err = %v, want ErrTypeToastRemoved", err)
	}
}

func TestDirectToastAddRejected(t *testing.T) {
	m, _ := newMgr(t)
	if _, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeToast, Bounds: screen()}); err == nil {
		t.Fatal("direct TypeToast add accepted; must go through NMS")
	}
	if _, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: screen()}); err != nil {
		t.Fatalf("AddToastWindow: %v", err)
	}
}

func TestProtectedForegroundBlocksOverlays(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	id, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()})
	if err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	m.SetProtectedForeground(true)
	if !m.ProtectedForeground() {
		t.Fatal("ProtectedForeground not set")
	}
	// New overlays rejected.
	if _, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()}); !errors.Is(err, ErrProtectedForeground) {
		t.Fatalf("err = %v, want ErrProtectedForeground", err)
	}
	// Existing overlay hidden: touches fall through.
	if _, top, ok := m.BeginGesture(geom.Pt(100, 100)); ok {
		t.Fatalf("touch hit hidden overlay %v", top.ID)
	}
	m.SetProtectedForeground(false)
	if _, top, ok := m.BeginGesture(geom.Pt(100, 100)); !ok || top.ID != id {
		t.Fatal("overlay not restored after protection lifted")
	}
}

func TestOverlayCountTransitions(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	type change struct{ old, new int }
	var changes []change
	m.OnOverlayCountChange(func(app binder.ProcessID, old, new int) {
		if app == evilApp {
			changes = append(changes, change{old, new})
		}
	})
	id1, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()})
	if err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	id2, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()})
	if err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	if m.OverlayCount(evilApp) != 2 {
		t.Fatalf("OverlayCount = %d, want 2", m.OverlayCount(evilApp))
	}
	if err := m.RemoveWindow(id1); err != nil {
		t.Fatalf("RemoveWindow: %v", err)
	}
	if err := m.RemoveWindow(id2); err != nil {
		t.Fatalf("RemoveWindow: %v", err)
	}
	want := []change{{0, 1}, {1, 2}, {2, 1}, {1, 0}}
	if len(changes) != len(want) {
		t.Fatalf("changes = %v, want %v", changes, want)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("changes = %v, want %v", changes, want)
		}
	}
	if m.OverlayCount(evilApp) != 0 {
		t.Fatalf("final count = %d, want 0", m.OverlayCount(evilApp))
	}
}

func TestRevokeRemovesOverlays(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	if _, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()}); err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	m.RevokeOverlayPermission(evilApp)
	if m.OverlayCount(evilApp) != 0 {
		t.Fatal("overlays survived permission revocation")
	}
	if m.HasOverlayPermission(evilApp) {
		t.Fatal("permission survived revocation")
	}
}

func TestZOrderLayering(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	if _, err := m.AddWindow(Spec{Owner: victimApp, Type: TypeActivity, Bounds: screen()}); err != nil {
		t.Fatalf("activity: %v", err)
	}
	if _, err := m.AddWindow(Spec{Owner: victimApp, Type: TypeInputMethod, Bounds: geom.RectWH(0, 1200, 1080, 720)}); err != nil {
		t.Fatalf("ime: %v", err)
	}
	ovID, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: geom.RectWH(0, 1200, 1080, 720)})
	if err != nil {
		t.Fatalf("overlay: %v", err)
	}
	toastID, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: geom.RectWH(0, 1200, 1080, 720)})
	if err != nil {
		t.Fatalf("toast: %v", err)
	}
	// Visually the toast is on top.
	top, ok := m.TopWindowAt(geom.Pt(500, 1500), false)
	if !ok || top.ID != toastID {
		t.Fatalf("visual top = %+v, want toast %d", top, toastID)
	}
	// But the topmost *touchable* window is the overlay: the toast never
	// receives touches, so the attack's transparent overlay intercepts.
	top, ok = m.TopWindowAt(geom.Pt(500, 1500), true)
	if !ok || top.ID != ovID {
		t.Fatalf("touch top = %+v, want overlay %d", top, ovID)
	}
}

func TestNotTouchableOverlayPassesThrough(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	var victimEvents []TouchEvent
	if _, err := m.AddWindow(Spec{
		Owner: victimApp, Type: TypeActivity, Bounds: screen(),
		OnTouch: func(ev TouchEvent) { victimEvents = append(victimEvents, ev) },
	}); err != nil {
		t.Fatalf("activity: %v", err)
	}
	// Clickjacking overlay: visible but not touchable.
	if _, err := m.AddWindow(Spec{
		Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen(),
		Flags: FlagNotTouchable,
	}); err != nil {
		t.Fatalf("overlay: %v", err)
	}
	gid, top, ok := m.BeginGesture(geom.Pt(200, 300))
	if !ok || top.Owner != victimApp {
		t.Fatalf("gesture target = %+v, want victim activity", top)
	}
	if done, err := m.EndGesture(gid, geom.Pt(200, 300)); err != nil || !done {
		t.Fatalf("EndGesture = (%v,%v), want completed", done, err)
	}
	if len(victimEvents) != 2 || victimEvents[0].Action != ActionDown || victimEvents[1].Action != ActionUp {
		t.Fatalf("victim events = %v, want down+up", victimEvents)
	}
}

func TestGestureCanceledWhenWindowRemoved(t *testing.T) {
	m, c := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	var events []TouchEvent
	id, err := m.AddWindow(Spec{
		Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen(),
		OnTouch: func(ev TouchEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	gid, _, ok := m.BeginGesture(geom.Pt(100, 100))
	if !ok {
		t.Fatal("gesture missed overlay")
	}
	// Overlay removed mid-press (the draw-and-destroy swap).
	c.MustAfter(10*time.Millisecond, "swap", func() {
		if err := m.RemoveWindow(id); err != nil {
			t.Errorf("RemoveWindow: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	done, err := m.EndGesture(gid, geom.Pt(100, 100))
	if err != nil {
		t.Fatalf("EndGesture: %v", err)
	}
	if done {
		t.Fatal("gesture completed despite window removal")
	}
	if len(events) != 2 || events[0].Action != ActionDown || events[1].Action != ActionCancel {
		t.Fatalf("events = %v, want down+cancel", events)
	}
	st := m.Stats()
	if st.Canceled != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v, want 1 canceled", st)
	}
}

func TestGestureMissWhenNoWindow(t *testing.T) {
	m, _ := newMgr(t)
	gid, _, ok := m.BeginGesture(geom.Pt(5, 5))
	if ok {
		t.Fatal("gesture found a window on an empty screen")
	}
	done, err := m.EndGesture(gid, geom.Pt(5, 5))
	if err != nil || done {
		t.Fatalf("EndGesture = (%v,%v), want (false,nil)", done, err)
	}
	if st := m.Stats(); st.Missed != 1 {
		t.Fatalf("Missed = %d, want 1", st.Missed)
	}
}

func TestEndGestureUnknownID(t *testing.T) {
	m, _ := newMgr(t)
	if _, err := m.EndGesture(12345, geom.Pt(0, 0)); err == nil {
		t.Fatal("unknown gesture accepted")
	}
}

func TestRemoveUnknownWindow(t *testing.T) {
	m, _ := newMgr(t)
	if err := m.RemoveWindow(999); !errors.Is(err, ErrUnknownWindow) {
		t.Fatalf("err = %v, want ErrUnknownWindow", err)
	}
}

func TestSetAlphaClamps(t *testing.T) {
	m, _ := newMgr(t)
	id, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: screen()})
	if err != nil {
		t.Fatalf("AddToastWindow: %v", err)
	}
	if err := m.SetAlpha(id, 2.5); err != nil {
		t.Fatalf("SetAlpha: %v", err)
	}
	if w, _ := m.Get(id); w.Alpha != 1 {
		t.Fatalf("alpha = %v, want clamp to 1", w.Alpha)
	}
	if err := m.SetAlpha(id, -1); err != nil {
		t.Fatalf("SetAlpha: %v", err)
	}
	if w, _ := m.Get(id); w.Alpha != 0 {
		t.Fatalf("alpha = %v, want clamp to 0", w.Alpha)
	}
	if err := m.SetAlpha(999, 0.5); err == nil {
		t.Fatal("SetAlpha on unknown window succeeded")
	}
}

func TestTopToastAlpha(t *testing.T) {
	m, _ := newMgr(t)
	if got := m.TopToastAlpha(evilApp); got != 0 {
		t.Fatalf("TopToastAlpha with no toasts = %v, want 0", got)
	}
	id1, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: screen()})
	if err != nil {
		t.Fatalf("toast1: %v", err)
	}
	id2, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: screen()})
	if err != nil {
		t.Fatalf("toast2: %v", err)
	}
	if err := m.SetAlpha(id1, 0.3); err != nil {
		t.Fatalf("SetAlpha: %v", err)
	}
	if err := m.SetAlpha(id2, 0.8); err != nil {
		t.Fatalf("SetAlpha: %v", err)
	}
	if got := m.TopToastAlpha(evilApp); got != 0.8 {
		t.Fatalf("TopToastAlpha = %v, want 0.8", got)
	}
	// Other apps' toasts don't count.
	if got := m.TopToastAlpha(victimApp); got != 0 {
		t.Fatalf("TopToastAlpha(victim) = %v, want 0", got)
	}
}

func TestWindowsOfAndCounts(t *testing.T) {
	m, _ := newMgr(t)
	m.GrantOverlayPermission(evilApp)
	for i := 0; i < 3; i++ {
		if _, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()}); err != nil {
			t.Fatalf("AddWindow: %v", err)
		}
	}
	if got := len(m.WindowsOf(evilApp, TypeApplicationOverlay)); got != 3 {
		t.Fatalf("WindowsOf = %d, want 3", got)
	}
	if got := m.WindowCount(); got != 3 {
		t.Fatalf("WindowCount = %d, want 3", got)
	}
}

func TestAttachedAndGet(t *testing.T) {
	m, _ := newMgr(t)
	id, err := m.AddToastWindow(Spec{Owner: evilApp, Bounds: screen()})
	if err != nil {
		t.Fatalf("AddToastWindow: %v", err)
	}
	if !m.Attached(id) {
		t.Fatal("Attached = false for live window")
	}
	w, ok := m.Get(id)
	if !ok || w.Type != TypeToast || w.Owner != evilApp {
		t.Fatalf("Get = (%+v,%v)", w, ok)
	}
	if err := m.RemoveWindow(id); err != nil {
		t.Fatalf("RemoveWindow: %v", err)
	}
	if m.Attached(id) {
		t.Fatal("Attached = true after removal")
	}
	if _, ok := m.Get(id); ok {
		t.Fatal("Get found removed window")
	}
}

// Property: for any sequence of adds/removes, the per-app overlay count
// equals the number of attached overlay windows and never goes negative.
func TestPropertyOverlayCountConsistent(t *testing.T) {
	prop := func(ops []bool) bool {
		c := simclock.New()
		m, err := NewManager(c, screen())
		if err != nil {
			return false
		}
		m.GrantOverlayPermission(evilApp)
		var ids []WindowID
		for _, add := range ops {
			if add || len(ids) == 0 {
				id, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: screen()})
				if err != nil {
					return false
				}
				ids = append(ids, id)
			} else {
				id := ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				if err := m.RemoveWindow(id); err != nil {
					return false
				}
			}
			if m.OverlayCount(evilApp) != len(ids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a touch is dispatched to exactly one window, and that window
// contains the point and is touchable.
func TestPropertyTouchTargetValid(t *testing.T) {
	prop := func(xs, ys []uint16) bool {
		c := simclock.New()
		m, err := NewManager(c, screen())
		if err != nil {
			return false
		}
		m.GrantOverlayPermission(evilApp)
		if _, err := m.AddWindow(Spec{Owner: victimApp, Type: TypeActivity, Bounds: screen()}); err != nil {
			return false
		}
		if _, err := m.AddWindow(Spec{Owner: evilApp, Type: TypeApplicationOverlay, Bounds: geom.RectWH(0, 960, 1080, 960)}); err != nil {
			return false
		}
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		for i := 0; i < n; i++ {
			p := geom.Pt(float64(xs[i])/65535*1079, float64(ys[i])/65535*1919)
			gid, top, ok := m.BeginGesture(p)
			if !ok {
				return false // screen fully covered by the activity
			}
			if !top.Bounds.Contains(p) || !top.Touchable() {
				return false
			}
			// Bottom half hits the overlay, top half the activity.
			if p.Y >= 960 && top.Owner != evilApp {
				return false
			}
			if p.Y < 960 && top.Owner != victimApp {
				return false
			}
			if done, err := m.EndGesture(gid, p); err != nil || !done {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
