package sentry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// postDirect drives one ingest through the handler without a network
// socket (keeps the -race run tight) and returns the HTTP status.
func postDirect(srv *Server, device string, body []byte) int {
	req := httptest.NewRequest("POST", "/v1/ingest?device="+device, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code
}

// TestContentionAccountingUnderShedding hammers the admission gate from
// 32 goroutines with the gate deliberately starved (depth 1, slow
// processing), so most batches shed. Both exclusivity contracts must
// hold exactly afterwards:
//
//	BatchesOK + BatchesShed + BadBatches + RefusedBatches == IngestCalls
//	Detected  + Clean       + Shed                        == DevicesReported
//
// Run with -race; the shard locks and atomic counters are the code
// under test as much as the arithmetic.
func TestContentionAccountingUnderShedding(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		QueueDepth: 1,
		procDelay:  3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 32
		batches    = 4
	)
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		seen  = map[int]int{}
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			device := fmt.Sprintf("dev-%02d", g)
			recs := overlayPairs(device, 2*batches, 100*time.Millisecond, 5*time.Millisecond)
			<-start
			for b := 0; b < batches; b++ {
				body, err := EncodeBatch(recs[b*4 : (b+1)*4])
				if err != nil {
					t.Error(err)
					return
				}
				code := postDirect(srv, device, body)
				mu.Lock()
				seen[code]++
				mu.Unlock()
			}
		}(g)
	}
	close(start)
	wg.Wait()

	// A few torn batches once the gate has drained (sequential, so none
	// of them can shed): bad batches must land in the identity too, and
	// must not disturb the accounting of devices that already reported.
	const torn = 5
	for g := 0; g < torn; g++ {
		device := fmt.Sprintf("dev-%02d", g)
		if code := postDirect(srv, device, []byte("s1 "+device+" 999 addView 0")); code != 400 {
			t.Fatalf("torn batch for %s: status %d, want 400", device, code)
		}
		seen[400]++
	}

	m := srv.Metrics()
	calls, ok, shed, bad, refused := m.IngestCalls.Load(), m.BatchesOK.Load(),
		m.BatchesShed.Load(), m.BadBatches.Load(), m.RefusedBatches.Load()
	if ok+shed+bad+refused != calls {
		t.Fatalf("batch identity broken: ok %d + shed %d + bad %d + refused %d != calls %d",
			ok, shed, bad, refused, calls)
	}
	if want := uint64(goroutines*batches + torn); calls != want {
		t.Fatalf("IngestCalls %d, want %d", calls, want)
	}
	if shed == 0 {
		t.Fatal("starved gate shed nothing; the contention case was not exercised")
	}
	if bad != torn {
		t.Fatalf("BadBatches %d, want %d", bad, torn)
	}
	// The server's counters must agree with what the clients observed.
	if uint64(seen[200]) != ok || uint64(seen[429]) != shed || uint64(seen[400]) != bad {
		t.Fatalf("client-observed statuses %v disagree with metrics ok=%d shed=%d bad=%d",
			seen, ok, shed, bad)
	}

	snap := srv.Engine().Snapshot()
	if snap.Detected+snap.Clean+snap.Shed != snap.DevicesReported {
		t.Fatalf("device identity broken: %+v", snap)
	}
	if snap.DevicesReported != goroutines {
		t.Fatalf("DevicesReported %d, want %d", snap.DevicesReported, goroutines)
	}
}

// TestContentionAccountingNoShed is the control: a gate deeper than the
// client count never sheds, every batch applies, every device ends
// detected or clean, and both identities still hold exactly.
func TestContentionAccountingNoShed(t *testing.T) {
	srv, err := NewServer(ServerConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			device := fmt.Sprintf("dev-%02d", g)
			recs := overlayPairs(device, 8, 100*time.Millisecond, 5*time.Millisecond)
			for b := 0; b < 4; b++ {
				body, err := EncodeBatch(recs[b*4 : (b+1)*4])
				if err != nil {
					t.Error(err)
					return
				}
				if code := postDirect(srv, device, body); code != 200 {
					t.Errorf("%s batch %d: status %d", device, b, code)
				}
			}
		}(g)
	}
	wg.Wait()

	m := srv.Metrics()
	if m.BatchesShed.Load() != 0 || m.BadBatches.Load() != 0 || m.RefusedBatches.Load() != 0 {
		t.Fatalf("unexpected non-OK batches: shed=%d bad=%d refused=%d",
			m.BatchesShed.Load(), m.BadBatches.Load(), m.RefusedBatches.Load())
	}
	if m.BatchesOK.Load() != m.IngestCalls.Load() {
		t.Fatalf("ok %d != calls %d", m.BatchesOK.Load(), m.IngestCalls.Load())
	}
	snap := srv.Engine().Snapshot()
	if snap.Shed != 0 {
		t.Fatalf("no batch shed but %d devices accounted shed", snap.Shed)
	}
	if snap.Detected+snap.Clean != snap.DevicesReported || snap.DevicesReported != goroutines {
		t.Fatalf("device identity broken: %+v", snap)
	}
	// Every stream was a full draw-and-destroy cadence: all detected.
	if snap.Detected != goroutines {
		t.Fatalf("Detected %d, want %d", snap.Detected, goroutines)
	}
}
