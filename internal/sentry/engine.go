// Package sentry is the streaming fleet-scale detection service: the
// paper's §VII-A IPC detector (internal/defense.IPCDetector), lifted
// from a batch-per-trial evaluation into a long-running service that
// watches binder addView/removeView transaction streams from thousands
// of devices at once, plus the notification-abuse extension motivated
// by Knock-Knock (PAPERS.md).
//
// The package has four layers:
//
//  1. a wire codec (wire.go) for device-stream transaction records,
//     strict enough that decode→encode is byte-exact on valid input,
//  2. the Engine (this file): per-device state in sharded sliding
//     windows — shard by device ID, one lock per shard — feeding the
//     §VII-A decision rule, with a bounded-memory time-bucketed
//     frequency sketch so per-device memory stays O(window) even when
//     an attacker floods the stream,
//  3. an HTTP server (server.go) reusing vetd's admission design: a
//     bounded in-flight gate with explicit 429 shedding, exclusive
//     device accounting (detected+clean+shed == devices_reported),
//     Prometheus /metrics and the /healthz–/readyz liveness/readiness
//     split,
//  4. a seeded fleet generator and conformance reporter (fleet.go,
//     report.go): because attacker devices are planted by the
//     generator, every replay doubles as a labeled corpus and reports
//     precision/recall against ground truth.
//
// sentry is a wall-clock serving package (simlint's ServingPackages
// allowlist), but every *detection decision* is a pure function of the
// device's own record stream — record timestamps are virtual, sharding
// only picks a lock — so a fleet replay renders byte-identically at any
// shard count and any client concurrency.
package sentry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the Engine. The zero value selects the documented
// defaults, which mirror defense.IPCDetectorConfig where the two
// overlap.
type Config struct {
	// Shards is the device-state shard count; each shard holds a map of
	// device states behind its own mutex (default 8). The shard count
	// affects lock contention only, never detection results.
	Shards int
	// Window is the sliding observation window (default 3s).
	Window time.Duration
	// MinCalls is the minimum addView+removeView count within the
	// window for a device to be suspicious (default 8).
	MinCalls int
	// MaxSwapGap is the maximum gap between adjacent add/remove records
	// (either order) for the pair to count as a draw-and-destroy swap
	// (default 50ms).
	MaxSwapGap time.Duration
	// MinSwaps is the minimum qualifying swap count within the window
	// (default 4).
	MinSwaps int
	// NotifFlood is the enqueueNotification count within the window
	// that flags a notification-abuse device (default 30; negative
	// disables the rule).
	NotifFlood int
	// RingCap bounds the per-device ring of recent overlay records used
	// for swap detection (default 128). Under flood the ring evicts its
	// oldest entries — counted, never grown — while the sketch keeps
	// the window's call-rate estimate intact.
	RingCap int
	// SketchBuckets is the number of time buckets the frequency sketch
	// divides the window into (default 16). More buckets sharpen the
	// window edge at a few bytes per device each.
	SketchBuckets int
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("sentry: shard count %d < 1", c.Shards)
	}
	if c.Window == 0 {
		c.Window = 3 * time.Second
	}
	if c.Window < 0 {
		return c, fmt.Errorf("sentry: negative window %v", c.Window)
	}
	if c.MinCalls == 0 {
		c.MinCalls = 8
	}
	if c.MinCalls < 2 {
		return c, fmt.Errorf("sentry: MinCalls %d too small", c.MinCalls)
	}
	if c.MaxSwapGap == 0 {
		c.MaxSwapGap = 50 * time.Millisecond
	}
	if c.MaxSwapGap < 0 {
		return c, fmt.Errorf("sentry: negative MaxSwapGap %v", c.MaxSwapGap)
	}
	if c.MinSwaps == 0 {
		c.MinSwaps = 4
	}
	if c.MinSwaps < 1 {
		return c, fmt.Errorf("sentry: MinSwaps %d too small", c.MinSwaps)
	}
	if c.NotifFlood == 0 {
		c.NotifFlood = 30
	}
	if c.RingCap == 0 {
		c.RingCap = 128
	}
	if c.RingCap < 8 {
		return c, fmt.Errorf("sentry: RingCap %d too small", c.RingCap)
	}
	if c.SketchBuckets == 0 {
		c.SketchBuckets = 16
	}
	if c.SketchBuckets < 2 {
		return c, fmt.Errorf("sentry: SketchBuckets %d too small", c.SketchBuckets)
	}
	return c, nil
}

// Detection patterns.
const (
	PatternDrawAndDestroy = "draw-and-destroy"
	PatternNotifyFlood    = "notify-flood"
)

// Detection is one positive per-device finding. A device is flagged at
// most once; the first rule to fire wins.
type Detection struct {
	// Device is the flagged device.
	Device string `json:"device"`
	// Pattern names the rule that fired.
	Pattern string `json:"pattern"`
	// At is the virtual stream timestamp of the triggering record.
	At time.Duration `json:"at_ns"`
	// Calls is the window's call-count estimate at detection: overlay
	// calls for draw-and-destroy, notifications for notify-flood.
	Calls int `json:"calls"`
	// Swaps and MeanSwapGap describe the qualifying swap pairs
	// (draw-and-destroy only).
	Swaps       int           `json:"swaps"`
	MeanSwapGap time.Duration `json:"mean_swap_gap_ns"`
	// ConfigVersion is the rule-set version active when the detection
	// fired (see ApplyConfig); 1 is the construction configuration.
	ConfigVersion uint64 `json:"config_version"`
}

// Journal receives every detection the instant it fires, before the
// ingest that triggered it returns — the crash-safety seam sentryd
// wires to a sentrystore.Store. Append is called under the flagged
// device's shard lock, so implementations must not call back into the
// engine; an error is counted (JournalErrors) but never blocks the
// detection itself.
type Journal interface {
	Append(d Detection) error
}

// rules is the swappable detection rule set; see config.go for the
// versioning discipline. bucketDur is derived (window/sketchBuckets)
// and cached because every bump consults it.
type rules struct {
	version       uint64
	window        time.Duration
	minCalls      int
	maxSwapGap    time.Duration
	minSwaps      int
	notifFlood    int
	sketchBuckets int
	bucketDur     time.Duration
}

// overlayRec is one add/remove record in a device's ring.
type overlayRec struct {
	add bool
	at  time.Duration
}

// bucket is one time slice of the per-device frequency sketch: counts
// of each method class whose records landed in [idx·w, (idx+1)·w).
type bucket struct {
	idx             int64
	overlays, notes uint32
}

// deviceState is everything the engine keeps per device. Memory is
// O(RingCap + SketchBuckets) regardless of stream rate: the ring holds
// at most RingCap recent overlay records and the sketch at most
// SketchBuckets+1 counters. recs/ign/evict are the device's slice of
// the engine-wide counters — the per-device accounting rows a ring
// router needs to merge N replicated nodes into one exact fleet report.
type deviceState struct {
	lastSeq   uint64
	hasSeq    bool
	shed      bool
	detection *Detection
	ring      []overlayRec
	buckets   []bucket
	// bdur is the bucket duration the sketch was built under; when a
	// config swap changes it, the buckets are remapped in place so the
	// window estimate survives the swap (no lost accounting).
	bdur time.Duration

	recs, ign, evict uint64
}

// shard is one lock's worth of device states.
type shard struct {
	mu      sync.Mutex
	devices map[string]*deviceState
}

// Engine is the streaming detector. All methods are safe for
// concurrent use; per-device work serializes on the device's shard.
type Engine struct {
	cfg    Config
	shards []*shard

	// rules is the live (versioned, atomically swappable) rule set;
	// configMu serializes swaps, never ingest.
	rules    atomic.Pointer[rules]
	configMu sync.Mutex

	// journal, when set (SetJournal, before serving), receives every
	// detection as it fires.
	journal Journal

	records       atomic.Uint64 // records ingested (all methods)
	ignored       atomic.Uint64 // records with methods no rule consumes
	ringEvictions atomic.Uint64 // overlay records evicted by RingCap pressure
	detections    atomic.Uint64 // devices flagged
	journalErrs   atomic.Uint64 // journal appends that failed
}

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
	}
	initial := &rules{
		version:       1,
		window:        cfg.Window,
		minCalls:      cfg.MinCalls,
		maxSwapGap:    cfg.MaxSwapGap,
		minSwaps:      cfg.MinSwaps,
		notifFlood:    cfg.NotifFlood,
		sketchBuckets: cfg.SketchBuckets,
		bucketDur:     cfg.Window / time.Duration(cfg.SketchBuckets),
	}
	if initial.bucketDur <= 0 {
		initial.bucketDur = 1
	}
	e.rules.Store(initial)
	for i := range e.shards {
		e.shards[i] = &shard{devices: make(map[string]*deviceState)}
	}
	return e, nil
}

// Config returns the engine's effective configuration: the static
// construction fields plus the currently active rule set.
func (e *Engine) Config() Config {
	cfg := e.cfg
	ru := e.rules.Load()
	cfg.Window = ru.window
	cfg.MinCalls = ru.minCalls
	cfg.MaxSwapGap = ru.maxSwapGap
	cfg.MinSwaps = ru.minSwaps
	cfg.NotifFlood = ru.notifFlood
	cfg.SketchBuckets = ru.sketchBuckets
	return cfg
}

// SetJournal installs the detection journal. Call before the engine
// serves traffic; the pointer is read without synchronization on the
// ingest path.
func (e *Engine) SetJournal(j Journal) { e.journal = j }

// JournalErrors reports how many journal appends failed.
func (e *Engine) JournalErrors() uint64 { return e.journalErrs.Load() }

// Restore preloads recovered detections — a crash-safe store's contents
// — into the engine, before it serves traffic. A restored device is
// accounted detected (it reports without ever re-streaming) and its
// sequence state is fresh, so the device's continuing stream is
// accepted from wherever it resumes. Restored detections are not
// re-journaled: the journal already holds them.
func (e *Engine) Restore(ds []Detection) error {
	for _, d := range ds {
		if !validToken(d.Device) {
			return fmt.Errorf("sentry: restore: bad device token %q", d.Device)
		}
		sh := e.shardFor(d.Device)
		sh.mu.Lock()
		st := sh.state(d.Device)
		if st.detection == nil {
			det := d
			st.detection = &det
			e.detections.Add(1)
		}
		sh.mu.Unlock()
	}
	return nil
}

func (e *Engine) shardFor(device string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(device)) // fnv writes never fail
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// state returns the device's state, creating it if absent. Callers hold
// the shard lock.
func (sh *shard) state(device string) *deviceState {
	st := sh.devices[device]
	if st == nil {
		st = &deviceState{}
		sh.devices[device] = st
	}
	return st
}

// Ingest feeds one device's batch of records through the detector. All
// records must carry the given device ID and strictly increasing
// sequence numbers continuing the device's stream; the first violation
// stops processing and returns the count of records already applied
// alongside the error. A batch for one device takes its shard lock
// once.
func (e *Engine) Ingest(device string, recs []Record) (int, error) {
	// One rule-set load per batch: a config swap racing the batch
	// applies to the whole batch or none of it.
	ru := e.rules.Load()
	sh := e.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.state(device)
	for i, r := range recs {
		if r.Device != device {
			return i, fmt.Errorf("sentry: record %d is for device %q, batch is for %q", i, r.Device, device)
		}
		if st.hasSeq && r.Seq <= st.lastSeq {
			return i, fmt.Errorf("sentry: record %d seq %d not after device %q seq %d", i, r.Seq, device, st.lastSeq)
		}
		st.lastSeq, st.hasSeq = r.Seq, true
		e.records.Add(1)
		st.recs++
		e.observe(ru, st, r)
	}
	return len(recs), nil
}

// MarkShed records that a batch for the device was refused at
// admission: the device has reported (it counts toward
// devices_reported) but its stream is known-incomplete, so unless a
// detection already fired — or fires later on the records that did get
// through — the device is accounted shed rather than clean.
func (e *Engine) MarkShed(device string) {
	sh := e.shardFor(device)
	sh.mu.Lock()
	sh.state(device).shed = true
	sh.mu.Unlock()
}

// observe applies one record to the device's window state and runs the
// decision rules. Caller holds the shard lock.
func (e *Engine) observe(ru *rules, st *deviceState, r Record) {
	switch r.Method {
	case MethodAddView, MethodRemoveView:
		e.observeOverlay(ru, st, r)
	case MethodEnqueueNotification:
		e.bump(ru, st, r.At, false)
		e.evaluateNotify(ru, st, r.Device, r.At)
	default:
		e.ignored.Add(1)
		st.ign++
	}
}

func (e *Engine) observeOverlay(ru *rules, st *deviceState, r Record) {
	if len(st.ring) == e.cfg.RingCap {
		copy(st.ring, st.ring[1:])
		st.ring = st.ring[:len(st.ring)-1]
		e.ringEvictions.Add(1)
		st.evict++
	}
	st.ring = append(st.ring, overlayRec{add: r.Method == MethodAddView, at: r.At})
	// Trim ring entries older than the window (exact cutoff; the ring is
	// time-ordered because timestamps within a device stream are
	// non-decreasing in practice, and a decreasing timestamp simply
	// trims nothing).
	cutoff := r.At - ru.window
	i := 0
	for i < len(st.ring) && st.ring[i].at < cutoff {
		i++
	}
	if i > 0 {
		st.ring = append(st.ring[:0], st.ring[i:]...)
	}
	e.bump(ru, st, r.At, true)
	e.evaluateOverlay(ru, st, r.Device, r.At)
}

// rebucket remaps the device's sketch from its previous bucket duration
// to the rule set's current one — a config swap changed the window or
// the bucket count. Each old bucket's counts move to the new bucket
// covering its start instant; counts are merged, never dropped, so the
// window estimate is continuous across the swap (within one bucket of
// slack, the sketch's usual tolerance).
func rebucket(st *deviceState, newDur time.Duration) {
	if len(st.buckets) == 0 || st.bdur == newDur {
		return
	}
	out := st.buckets[:0]
	for _, b := range st.buckets {
		idx := b.idx * int64(st.bdur) / int64(newDur)
		if n := len(out); n > 0 && out[n-1].idx == idx {
			out[n-1].overlays += b.overlays
			out[n-1].notes += b.notes
		} else {
			out = append(out, bucket{idx: idx, overlays: b.overlays, notes: b.notes})
		}
	}
	st.buckets = out
}

// bump counts one record into the sketch bucket covering at, evicting
// buckets that slid out of the window.
func (e *Engine) bump(ru *rules, st *deviceState, at time.Duration, overlay bool) {
	if st.bdur != ru.bucketDur {
		rebucket(st, ru.bucketDur)
		st.bdur = ru.bucketDur
	}
	idx := int64(at / ru.bucketDur)
	live := idx - int64(ru.sketchBuckets) + 1
	// Evict dead buckets from the front (they are kept in ascending
	// index order).
	i := 0
	for i < len(st.buckets) && st.buckets[i].idx < live {
		i++
	}
	if i > 0 {
		st.buckets = append(st.buckets[:0], st.buckets[i:]...)
	}
	// Fast path: the record lands in the newest bucket or starts one.
	n := len(st.buckets)
	switch {
	case n > 0 && st.buckets[n-1].idx == idx:
		st.buckets[n-1].count(overlay)
	case n == 0 || st.buckets[n-1].idx < idx:
		st.buckets = append(st.buckets, bucket{idx: idx})
		st.buckets[n].count(overlay)
	default:
		// Out-of-order timestamp: find (or insert) its bucket.
		for j := range st.buckets {
			if st.buckets[j].idx == idx {
				st.buckets[j].count(overlay)
				return
			}
			if st.buckets[j].idx > idx {
				st.buckets = append(st.buckets, bucket{})
				copy(st.buckets[j+1:], st.buckets[j:])
				st.buckets[j] = bucket{idx: idx}
				st.buckets[j].count(overlay)
				return
			}
		}
	}
}

func (b *bucket) count(overlay bool) {
	if overlay {
		b.overlays++
	} else {
		b.notes++
	}
}

// windowCounts sums the sketch's live buckets. This is the
// bounded-memory call-rate estimate: exact while every record in the
// window also fits the bucket span, within one bucket's slack at the
// trailing edge otherwise.
func (st *deviceState) windowCounts() (overlays, notes int) {
	for _, b := range st.buckets {
		overlays += int(b.overlays)
		notes += int(b.notes)
	}
	return overlays, notes
}

// evaluateOverlay is the §VII-A decision rule on streaming state: flag
// the device when the window holds at least MinCalls overlay calls and
// at least MinSwaps adjacent add/remove pairs with MaxSwapGap-scale
// gaps. Mirrors defense.IPCDetector.evaluate, with the window's call
// count estimated by the sketch so a flood cannot cheat detection by
// overflowing the ring.
func (e *Engine) evaluateOverlay(ru *rules, st *deviceState, device string, now time.Duration) {
	if st.detection != nil {
		return
	}
	calls, _ := st.windowCounts()
	if calls < ru.minCalls {
		return
	}
	swaps := 0
	var gapSum time.Duration
	for i := 0; i+1 < len(st.ring); i++ {
		next := st.ring[i+1]
		if st.ring[i].add == next.add {
			continue
		}
		if gap := next.at - st.ring[i].at; gap >= 0 && gap <= ru.maxSwapGap {
			swaps++
			gapSum += gap
		}
	}
	if swaps < ru.minSwaps {
		return
	}
	e.flag(st, Detection{
		Device:        device,
		Pattern:       PatternDrawAndDestroy,
		At:            now,
		Calls:         calls,
		Swaps:         swaps,
		MeanSwapGap:   gapSum / time.Duration(swaps),
		ConfigVersion: ru.version,
	})
}

// evaluateNotify is the Knock-Knock-motivated notification-abuse rule:
// a device enqueueing NotifFlood or more notifications within one
// window is flooding the shade.
func (e *Engine) evaluateNotify(ru *rules, st *deviceState, device string, now time.Duration) {
	if st.detection != nil || ru.notifFlood < 0 {
		return
	}
	_, notes := st.windowCounts()
	if notes < ru.notifFlood {
		return
	}
	e.flag(st, Detection{
		Device:        device,
		Pattern:       PatternNotifyFlood,
		At:            now,
		Calls:         notes,
		ConfigVersion: ru.version,
	})
}

// flag records the device's detection and journals it. Caller holds the
// shard lock; the journal sees the detection before the triggering
// ingest returns, so a node SIGKILLed right after the 200 still knows
// the device was flagged when it restarts.
func (e *Engine) flag(st *deviceState, d Detection) {
	st.detection = &d
	e.detections.Add(1)
	if e.journal != nil {
		if err := e.journal.Append(d); err != nil {
			e.journalErrs.Add(1)
		}
	}
}

// Snapshot is the engine's device-level accounting at one instant.
//
// Accounting contract (tested): every device that ever reached
// admission — whether its batches were processed or shed — appears in
// exactly one of Detected, Clean or Shed, so
//
//	Detected + Clean + Shed == DevicesReported
//
// holds exactly at every quiescent instant. Precedence is
// detected > shed > clean: a flagged device stays detected even if
// later batches shed (the attack was caught despite overload), and an
// unflagged device with any shed batch cannot be certified clean.
type Snapshot struct {
	Service         string `json:"service"`
	DevicesReported int    `json:"devices_reported"`
	Detected        int    `json:"detected"`
	Clean           int    `json:"clean"`
	Shed            int    `json:"shed"`

	RecordsIngested uint64 `json:"records_ingested"`
	RecordsIgnored  uint64 `json:"records_ignored"`
	RingEvictions   uint64 `json:"ring_evictions"`

	// Detections lists every flagged device, sorted by device ID so
	// repeated replays render identically.
	Detections []Detection `json:"detections"`

	// Devices lists every reported device's accounting row, sorted by
	// device ID. A ring router merges the rows of N replicated peers —
	// picking each device's canonical replica — into a fleet snapshot
	// whose totals still satisfy the exclusive-accounting identity.
	Devices []DeviceAccount `json:"devices,omitempty"`
}

// DeviceAccount is one device's slice of the accounting: its status
// bucket (exactly one of detected/shed/clean), its record counters and
// its detection, if any.
type DeviceAccount struct {
	Device    string     `json:"device"`
	Status    string     `json:"status"` // "detected" | "shed" | "clean"
	Records   uint64     `json:"records"`
	Ignored   uint64     `json:"ignored,omitempty"`
	Evictions uint64     `json:"evictions,omitempty"`
	Detection *Detection `json:"detection,omitempty"`
}

// Snapshot assembles the current accounting. Detection results depend
// only on per-device streams, so — given the same streams — a snapshot
// after a full replay is identical at any shard count.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		Service:         "sentryd",
		RecordsIngested: e.records.Load(),
		RecordsIgnored:  e.ignored.Load(),
		RingEvictions:   e.ringEvictions.Load(),
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		for dev, st := range sh.devices {
			snap.DevicesReported++
			acct := DeviceAccount{
				Device:    dev,
				Records:   st.recs,
				Ignored:   st.ign,
				Evictions: st.evict,
			}
			switch {
			case st.detection != nil:
				snap.Detected++
				d := *st.detection
				d.Device = dev
				snap.Detections = append(snap.Detections, d)
				acct.Status = "detected"
				det := d
				acct.Detection = &det
			case st.shed:
				snap.Shed++
				acct.Status = "shed"
			default:
				snap.Clean++
				acct.Status = "clean"
			}
			snap.Devices = append(snap.Devices, acct)
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Detections, func(i, j int) bool {
		return snap.Detections[i].Device < snap.Detections[j].Device
	})
	sort.Slice(snap.Devices, func(i, j int) bool {
		return snap.Devices[i].Device < snap.Devices[j].Device
	})
	return snap
}

// DetectionFor reports the device's detection, if it has one.
func (e *Engine) DetectionFor(device string) (Detection, bool) {
	sh := e.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.devices[device]
	if st == nil || st.detection == nil {
		return Detection{}, false
	}
	d := *st.detection
	d.Device = device
	return d, true
}

// Detected reports whether the device has been flagged.
func (e *Engine) Detected(device string) bool {
	sh := e.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.devices[device]
	return st != nil && st.detection != nil
}

// DetectionsTotal reports the number of devices flagged so far.
func (e *Engine) DetectionsTotal() uint64 { return e.detections.Load() }
