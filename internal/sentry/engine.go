// Package sentry is the streaming fleet-scale detection service: the
// paper's §VII-A IPC detector (internal/defense.IPCDetector), lifted
// from a batch-per-trial evaluation into a long-running service that
// watches binder addView/removeView transaction streams from thousands
// of devices at once, plus the notification-abuse extension motivated
// by Knock-Knock (PAPERS.md).
//
// The package has four layers:
//
//  1. a wire codec (wire.go) for device-stream transaction records,
//     strict enough that decode→encode is byte-exact on valid input,
//  2. the Engine (this file): per-device state in sharded sliding
//     windows — shard by device ID, one lock per shard — feeding the
//     §VII-A decision rule, with a bounded-memory time-bucketed
//     frequency sketch so per-device memory stays O(window) even when
//     an attacker floods the stream,
//  3. an HTTP server (server.go) reusing vetd's admission design: a
//     bounded in-flight gate with explicit 429 shedding, exclusive
//     device accounting (detected+clean+shed == devices_reported),
//     Prometheus /metrics and the /healthz–/readyz liveness/readiness
//     split,
//  4. a seeded fleet generator and conformance reporter (fleet.go,
//     report.go): because attacker devices are planted by the
//     generator, every replay doubles as a labeled corpus and reports
//     precision/recall against ground truth.
//
// sentry is a wall-clock serving package (simlint's ServingPackages
// allowlist), but every *detection decision* is a pure function of the
// device's own record stream — record timestamps are virtual, sharding
// only picks a lock — so a fleet replay renders byte-identically at any
// shard count and any client concurrency.
package sentry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the Engine. The zero value selects the documented
// defaults, which mirror defense.IPCDetectorConfig where the two
// overlap.
type Config struct {
	// Shards is the device-state shard count; each shard holds a map of
	// device states behind its own mutex (default 8). The shard count
	// affects lock contention only, never detection results.
	Shards int
	// Window is the sliding observation window (default 3s).
	Window time.Duration
	// MinCalls is the minimum addView+removeView count within the
	// window for a device to be suspicious (default 8).
	MinCalls int
	// MaxSwapGap is the maximum gap between adjacent add/remove records
	// (either order) for the pair to count as a draw-and-destroy swap
	// (default 50ms).
	MaxSwapGap time.Duration
	// MinSwaps is the minimum qualifying swap count within the window
	// (default 4).
	MinSwaps int
	// NotifFlood is the enqueueNotification count within the window
	// that flags a notification-abuse device (default 30; negative
	// disables the rule).
	NotifFlood int
	// RingCap bounds the per-device ring of recent overlay records used
	// for swap detection (default 128). Under flood the ring evicts its
	// oldest entries — counted, never grown — while the sketch keeps
	// the window's call-rate estimate intact.
	RingCap int
	// SketchBuckets is the number of time buckets the frequency sketch
	// divides the window into (default 16). More buckets sharpen the
	// window edge at a few bytes per device each.
	SketchBuckets int
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("sentry: shard count %d < 1", c.Shards)
	}
	if c.Window == 0 {
		c.Window = 3 * time.Second
	}
	if c.Window < 0 {
		return c, fmt.Errorf("sentry: negative window %v", c.Window)
	}
	if c.MinCalls == 0 {
		c.MinCalls = 8
	}
	if c.MinCalls < 2 {
		return c, fmt.Errorf("sentry: MinCalls %d too small", c.MinCalls)
	}
	if c.MaxSwapGap == 0 {
		c.MaxSwapGap = 50 * time.Millisecond
	}
	if c.MaxSwapGap < 0 {
		return c, fmt.Errorf("sentry: negative MaxSwapGap %v", c.MaxSwapGap)
	}
	if c.MinSwaps == 0 {
		c.MinSwaps = 4
	}
	if c.MinSwaps < 1 {
		return c, fmt.Errorf("sentry: MinSwaps %d too small", c.MinSwaps)
	}
	if c.NotifFlood == 0 {
		c.NotifFlood = 30
	}
	if c.RingCap == 0 {
		c.RingCap = 128
	}
	if c.RingCap < 8 {
		return c, fmt.Errorf("sentry: RingCap %d too small", c.RingCap)
	}
	if c.SketchBuckets == 0 {
		c.SketchBuckets = 16
	}
	if c.SketchBuckets < 2 {
		return c, fmt.Errorf("sentry: SketchBuckets %d too small", c.SketchBuckets)
	}
	return c, nil
}

// Detection patterns.
const (
	PatternDrawAndDestroy = "draw-and-destroy"
	PatternNotifyFlood    = "notify-flood"
)

// Detection is one positive per-device finding. A device is flagged at
// most once; the first rule to fire wins.
type Detection struct {
	// Device is the flagged device.
	Device string `json:"device"`
	// Pattern names the rule that fired.
	Pattern string `json:"pattern"`
	// At is the virtual stream timestamp of the triggering record.
	At time.Duration `json:"at_ns"`
	// Calls is the window's call-count estimate at detection: overlay
	// calls for draw-and-destroy, notifications for notify-flood.
	Calls int `json:"calls"`
	// Swaps and MeanSwapGap describe the qualifying swap pairs
	// (draw-and-destroy only).
	Swaps       int           `json:"swaps"`
	MeanSwapGap time.Duration `json:"mean_swap_gap_ns"`
}

// overlayRec is one add/remove record in a device's ring.
type overlayRec struct {
	add bool
	at  time.Duration
}

// bucket is one time slice of the per-device frequency sketch: counts
// of each method class whose records landed in [idx·w, (idx+1)·w).
type bucket struct {
	idx             int64
	overlays, notes uint32
}

// deviceState is everything the engine keeps per device. Memory is
// O(RingCap + SketchBuckets) regardless of stream rate: the ring holds
// at most RingCap recent overlay records and the sketch at most
// SketchBuckets+1 counters.
type deviceState struct {
	lastSeq   uint64
	hasSeq    bool
	shed      bool
	detection *Detection
	ring      []overlayRec
	buckets   []bucket
}

// shard is one lock's worth of device states.
type shard struct {
	mu      sync.Mutex
	devices map[string]*deviceState
}

// Engine is the streaming detector. All methods are safe for
// concurrent use; per-device work serializes on the device's shard.
type Engine struct {
	cfg       Config
	bucketDur time.Duration
	shards    []*shard

	records       atomic.Uint64 // records ingested (all methods)
	ignored       atomic.Uint64 // records with methods no rule consumes
	ringEvictions atomic.Uint64 // overlay records evicted by RingCap pressure
	detections    atomic.Uint64 // devices flagged
}

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		bucketDur: cfg.Window / time.Duration(cfg.SketchBuckets),
		shards:    make([]*shard, cfg.Shards),
	}
	if e.bucketDur <= 0 {
		e.bucketDur = 1
	}
	for i := range e.shards {
		e.shards[i] = &shard{devices: make(map[string]*deviceState)}
	}
	return e, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) shardFor(device string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(device)) // fnv writes never fail
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// state returns the device's state, creating it if absent. Callers hold
// the shard lock.
func (sh *shard) state(device string) *deviceState {
	st := sh.devices[device]
	if st == nil {
		st = &deviceState{}
		sh.devices[device] = st
	}
	return st
}

// Ingest feeds one device's batch of records through the detector. All
// records must carry the given device ID and strictly increasing
// sequence numbers continuing the device's stream; the first violation
// stops processing and returns the count of records already applied
// alongside the error. A batch for one device takes its shard lock
// once.
func (e *Engine) Ingest(device string, recs []Record) (int, error) {
	sh := e.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.state(device)
	for i, r := range recs {
		if r.Device != device {
			return i, fmt.Errorf("sentry: record %d is for device %q, batch is for %q", i, r.Device, device)
		}
		if st.hasSeq && r.Seq <= st.lastSeq {
			return i, fmt.Errorf("sentry: record %d seq %d not after device %q seq %d", i, r.Seq, device, st.lastSeq)
		}
		st.lastSeq, st.hasSeq = r.Seq, true
		e.records.Add(1)
		e.observe(st, r)
	}
	return len(recs), nil
}

// MarkShed records that a batch for the device was refused at
// admission: the device has reported (it counts toward
// devices_reported) but its stream is known-incomplete, so unless a
// detection already fired — or fires later on the records that did get
// through — the device is accounted shed rather than clean.
func (e *Engine) MarkShed(device string) {
	sh := e.shardFor(device)
	sh.mu.Lock()
	sh.state(device).shed = true
	sh.mu.Unlock()
}

// observe applies one record to the device's window state and runs the
// decision rules. Caller holds the shard lock.
func (e *Engine) observe(st *deviceState, r Record) {
	switch r.Method {
	case MethodAddView, MethodRemoveView:
		e.observeOverlay(st, r)
	case MethodEnqueueNotification:
		e.bump(st, r.At, false)
		e.evaluateNotify(st, r.At)
	default:
		e.ignored.Add(1)
	}
}

func (e *Engine) observeOverlay(st *deviceState, r Record) {
	if len(st.ring) == e.cfg.RingCap {
		copy(st.ring, st.ring[1:])
		st.ring = st.ring[:len(st.ring)-1]
		e.ringEvictions.Add(1)
	}
	st.ring = append(st.ring, overlayRec{add: r.Method == MethodAddView, at: r.At})
	// Trim ring entries older than the window (exact cutoff; the ring is
	// time-ordered because timestamps within a device stream are
	// non-decreasing in practice, and a decreasing timestamp simply
	// trims nothing).
	cutoff := r.At - e.cfg.Window
	i := 0
	for i < len(st.ring) && st.ring[i].at < cutoff {
		i++
	}
	if i > 0 {
		st.ring = append(st.ring[:0], st.ring[i:]...)
	}
	e.bump(st, r.At, true)
	e.evaluateOverlay(st, r.At)
}

// bump counts one record into the sketch bucket covering at, evicting
// buckets that slid out of the window.
func (e *Engine) bump(st *deviceState, at time.Duration, overlay bool) {
	idx := int64(at / e.bucketDur)
	live := idx - int64(e.cfg.SketchBuckets) + 1
	// Evict dead buckets from the front (they are kept in ascending
	// index order).
	i := 0
	for i < len(st.buckets) && st.buckets[i].idx < live {
		i++
	}
	if i > 0 {
		st.buckets = append(st.buckets[:0], st.buckets[i:]...)
	}
	// Fast path: the record lands in the newest bucket or starts one.
	n := len(st.buckets)
	switch {
	case n > 0 && st.buckets[n-1].idx == idx:
		st.buckets[n-1].count(overlay)
	case n == 0 || st.buckets[n-1].idx < idx:
		st.buckets = append(st.buckets, bucket{idx: idx})
		st.buckets[n].count(overlay)
	default:
		// Out-of-order timestamp: find (or insert) its bucket.
		for j := range st.buckets {
			if st.buckets[j].idx == idx {
				st.buckets[j].count(overlay)
				return
			}
			if st.buckets[j].idx > idx {
				st.buckets = append(st.buckets, bucket{})
				copy(st.buckets[j+1:], st.buckets[j:])
				st.buckets[j] = bucket{idx: idx}
				st.buckets[j].count(overlay)
				return
			}
		}
	}
}

func (b *bucket) count(overlay bool) {
	if overlay {
		b.overlays++
	} else {
		b.notes++
	}
}

// windowCounts sums the sketch's live buckets. This is the
// bounded-memory call-rate estimate: exact while every record in the
// window also fits the bucket span, within one bucket's slack at the
// trailing edge otherwise.
func (st *deviceState) windowCounts() (overlays, notes int) {
	for _, b := range st.buckets {
		overlays += int(b.overlays)
		notes += int(b.notes)
	}
	return overlays, notes
}

// evaluateOverlay is the §VII-A decision rule on streaming state: flag
// the device when the window holds at least MinCalls overlay calls and
// at least MinSwaps adjacent add/remove pairs with MaxSwapGap-scale
// gaps. Mirrors defense.IPCDetector.evaluate, with the window's call
// count estimated by the sketch so a flood cannot cheat detection by
// overflowing the ring.
func (e *Engine) evaluateOverlay(st *deviceState, now time.Duration) {
	if st.detection != nil {
		return
	}
	calls, _ := st.windowCounts()
	if calls < e.cfg.MinCalls {
		return
	}
	swaps := 0
	var gapSum time.Duration
	for i := 0; i+1 < len(st.ring); i++ {
		next := st.ring[i+1]
		if st.ring[i].add == next.add {
			continue
		}
		if gap := next.at - st.ring[i].at; gap >= 0 && gap <= e.cfg.MaxSwapGap {
			swaps++
			gapSum += gap
		}
	}
	if swaps < e.cfg.MinSwaps {
		return
	}
	st.detection = &Detection{
		Pattern:     PatternDrawAndDestroy,
		At:          now,
		Calls:       calls,
		Swaps:       swaps,
		MeanSwapGap: gapSum / time.Duration(swaps),
	}
	e.detections.Add(1)
}

// evaluateNotify is the Knock-Knock-motivated notification-abuse rule:
// a device enqueueing NotifFlood or more notifications within one
// window is flooding the shade.
func (e *Engine) evaluateNotify(st *deviceState, now time.Duration) {
	if st.detection != nil || e.cfg.NotifFlood < 0 {
		return
	}
	_, notes := st.windowCounts()
	if notes < e.cfg.NotifFlood {
		return
	}
	st.detection = &Detection{
		Pattern: PatternNotifyFlood,
		At:      now,
		Calls:   notes,
	}
	e.detections.Add(1)
}

// Snapshot is the engine's device-level accounting at one instant.
//
// Accounting contract (tested): every device that ever reached
// admission — whether its batches were processed or shed — appears in
// exactly one of Detected, Clean or Shed, so
//
//	Detected + Clean + Shed == DevicesReported
//
// holds exactly at every quiescent instant. Precedence is
// detected > shed > clean: a flagged device stays detected even if
// later batches shed (the attack was caught despite overload), and an
// unflagged device with any shed batch cannot be certified clean.
type Snapshot struct {
	Service         string `json:"service"`
	DevicesReported int    `json:"devices_reported"`
	Detected        int    `json:"detected"`
	Clean           int    `json:"clean"`
	Shed            int    `json:"shed"`

	RecordsIngested uint64 `json:"records_ingested"`
	RecordsIgnored  uint64 `json:"records_ignored"`
	RingEvictions   uint64 `json:"ring_evictions"`

	// Detections lists every flagged device, sorted by device ID so
	// repeated replays render identically.
	Detections []Detection `json:"detections"`
}

// Snapshot assembles the current accounting. Detection results depend
// only on per-device streams, so — given the same streams — a snapshot
// after a full replay is identical at any shard count.
func (e *Engine) Snapshot() Snapshot {
	snap := Snapshot{
		Service:         "sentryd",
		RecordsIngested: e.records.Load(),
		RecordsIgnored:  e.ignored.Load(),
		RingEvictions:   e.ringEvictions.Load(),
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		for dev, st := range sh.devices {
			snap.DevicesReported++
			switch {
			case st.detection != nil:
				snap.Detected++
				d := *st.detection
				d.Device = dev
				snap.Detections = append(snap.Detections, d)
			case st.shed:
				snap.Shed++
			default:
				snap.Clean++
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Detections, func(i, j int) bool {
		return snap.Detections[i].Device < snap.Detections[j].Device
	})
	return snap
}

// Detected reports whether the device has been flagged.
func (e *Engine) Detected(device string) bool {
	sh := e.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.devices[device]
	return st != nil && st.detection != nil
}

// DetectionsTotal reports the number of devices flagged so far.
func (e *Engine) DetectionsTotal() uint64 { return e.detections.Load() }
