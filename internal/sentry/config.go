package sentry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Live reconfiguration. The engine's detection thresholds — the sliding
// window, the §VII-A swap rule's MinCalls/MinSwaps/MaxSwapGap, the
// notify-flood threshold and the sketch bucket count — are not
// compile-time constants but a versioned rule set behind an atomic
// pointer: POST /v1/config swaps the whole set at once, without a
// restart and without losing accounting. Every batch is processed under
// exactly one rule version (Ingest loads the pointer once per batch),
// and every detection is stamped with the version that produced it, so
// a fleet operator can tell which detections predate a threshold
// change.
//
// Version discipline: the initial rule set is version 1 (the engine's
// construction Config). An update with Version 0 is assigned the next
// version; an update carrying an explicit version must be newer than
// the active one — re-pushing the active version with identical values
// is an idempotent no-op (the router heals restarted peers this way),
// re-pushing it with different values or pushing an older version is
// rejected. Rejected updates never touch the running rule set.

// ConfigUpdate is the /v1/config wire codec: the full swappable rule
// set, all fields required, strict decoding (unknown fields rejected).
// Durations travel as nanoseconds, mirroring Detection's JSON.
type ConfigUpdate struct {
	// Version is the explicit rule-set version; 0 asks the receiver to
	// assign the next one.
	Version uint64 `json:"version,omitempty"`

	Window        time.Duration `json:"window_ns"`
	MinCalls      int           `json:"min_calls"`
	MaxSwapGap    time.Duration `json:"max_swap_gap_ns"`
	MinSwaps      int           `json:"min_swaps"`
	NotifFlood    int           `json:"notif_flood"`
	SketchBuckets int           `json:"sketch_buckets"`
}

// Validate checks the update against the same bounds NewEngine enforces,
// with no defaulting: a live update must spell out every field.
func (u ConfigUpdate) Validate() error {
	if u.Window < time.Millisecond {
		return fmt.Errorf("sentry: config window %v below 1ms", u.Window)
	}
	if u.MinCalls < 2 {
		return fmt.Errorf("sentry: config MinCalls %d too small", u.MinCalls)
	}
	if u.MaxSwapGap < 0 {
		return fmt.Errorf("sentry: config negative MaxSwapGap %v", u.MaxSwapGap)
	}
	if u.MinSwaps < 1 {
		return fmt.Errorf("sentry: config MinSwaps %d too small", u.MinSwaps)
	}
	if u.NotifFlood == 0 {
		return fmt.Errorf("sentry: config NotifFlood 0 (use a negative value to disable the rule)")
	}
	if u.SketchBuckets < 2 {
		return fmt.Errorf("sentry: config SketchBuckets %d too small", u.SketchBuckets)
	}
	if u.Window/time.Duration(u.SketchBuckets) <= 0 {
		return fmt.Errorf("sentry: config window %v too short for %d buckets", u.Window, u.SketchBuckets)
	}
	return nil
}

// ParseConfigUpdate decodes the strict /v1/config body: one JSON
// object, unknown fields rejected, nothing after it. Parsing does not
// validate — the codec and the rule bounds are separate layers, and the
// fuzz target exercises both.
func ParseConfigUpdate(b []byte) (ConfigUpdate, error) {
	var u ConfigUpdate
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		return ConfigUpdate{}, fmt.Errorf("sentry: bad config body: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return ConfigUpdate{}, fmt.Errorf("sentry: trailing data after config object")
	}
	return u, nil
}

// Encode renders the update as its canonical JSON. For any body
// ParseConfigUpdate accepts, Encode∘Parse∘Encode is a fixed point —
// the round trip the fuzz target pins.
func (u ConfigUpdate) Encode() ([]byte, error) {
	return json.Marshal(u)
}

// ConfigSnapshot reports the engine's active rule set as a ConfigUpdate
// carrying its version.
func (e *Engine) ConfigSnapshot() ConfigUpdate {
	ru := e.rules.Load()
	return ConfigUpdate{
		Version:       ru.version,
		Window:        ru.window,
		MinCalls:      ru.minCalls,
		MaxSwapGap:    ru.maxSwapGap,
		MinSwaps:      ru.minSwaps,
		NotifFlood:    ru.notifFlood,
		SketchBuckets: ru.sketchBuckets,
	}
}

// RulesVersion reports the active rule-set version.
func (e *Engine) RulesVersion() uint64 { return e.rules.Load().version }

// sameRules reports whether the update describes exactly the active set.
func sameRules(u ConfigUpdate, ru *rules) bool {
	return u.Window == ru.window && u.MinCalls == ru.minCalls &&
		u.MaxSwapGap == ru.maxSwapGap && u.MinSwaps == ru.minSwaps &&
		u.NotifFlood == ru.notifFlood && u.SketchBuckets == ru.sketchBuckets
}

// ApplyConfig atomically swaps the engine's rule set. It returns the
// version now active. Invalid or stale updates are rejected without
// touching the running rules — a batch racing the swap is processed
// wholly under the old set or wholly under the new one, never a mix,
// and no counter is reset, so accounting is continuous across swaps.
func (e *Engine) ApplyConfig(u ConfigUpdate) (uint64, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	e.configMu.Lock()
	defer e.configMu.Unlock()
	cur := e.rules.Load()
	v := u.Version
	switch {
	case v == 0:
		v = cur.version + 1
	case v == cur.version:
		if sameRules(u, cur) {
			return cur.version, nil // idempotent re-push
		}
		return 0, fmt.Errorf("sentry: config version %d is already active with different values", v)
	case v < cur.version:
		return 0, fmt.Errorf("sentry: stale config version %d (active %d)", v, cur.version)
	}
	nr := &rules{
		version:       v,
		window:        u.Window,
		minCalls:      u.MinCalls,
		maxSwapGap:    u.MaxSwapGap,
		minSwaps:      u.MinSwaps,
		notifFlood:    u.NotifFlood,
		sketchBuckets: u.SketchBuckets,
		bucketDur:     u.Window / time.Duration(u.SketchBuckets),
	}
	if nr.bucketDur <= 0 {
		nr.bucketDur = 1
	}
	e.rules.Store(nr)
	return v, nil
}
