package sentry

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update regenerates the golden fleet reports instead of comparing
// against them:
//
//	go test ./internal/sentry -run TestGoldenFleetReplay -update
var update = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the current code")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden %s\n-- got --\n%s\n-- want --\n%s\n(run with -update if the change is intentional)",
			name, path, got, string(want))
	}
}

// goldenFleets pins the reference replays at two seeds, so a
// seed-dependent bug (a hard-coded 42 anywhere in the generator)
// cannot hide behind one golden.
func goldenFleets() []struct {
	seed   int64
	suffix string
} {
	return []struct {
		seed   int64
		suffix string
	}{
		{42, ""},
		{7, "-seed7"},
	}
}

// replayAgainstFreshServer boots a server at the given shard count,
// replays the fleet over real HTTP and renders the conformance report.
func replayAgainstFreshServer(t *testing.T, fl *Fleet, shards, clients int) string {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Engine:     Config{Shards: shards},
		QueueDepth: 256, // deeper than the client count: no shedding
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Timeout: 15 * time.Second}
	rs := ReplayFleet(client, ts.URL, fl, clients, 48)
	if rs.Errors > 0 {
		t.Fatalf("replay errors: %d (first: %s)", rs.Errors, rs.FirstError)
	}
	return RenderFleetReport(srv.Engine().Snapshot(), fl, rs)
}

// TestGoldenFleetReplay is the tentpole conformance check: a seeded
// labeled fleet replayed over HTTP must render byte-identically at
// shard counts 1, 4 and 16 — and identically to the committed golden.
// Every planted attacker must be caught with zero false positives.
func TestGoldenFleetReplay(t *testing.T) {
	for _, g := range goldenFleets() {
		g := g
		t.Run(filepath.Base("fleet"+g.suffix), func(t *testing.T) {
			fl, err := GenerateFleet(FleetConfig{
				Devices: 600, Attackers: 12, NotifAbusers: 6,
				Span: 12 * time.Second, Seed: g.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			reports := make(map[int]string, 3)
			for i, shards := range []int{1, 4, 16} {
				// Vary the client concurrency with the shard count so the
				// byte-identity also spans replay parallelism.
				reports[shards] = replayAgainstFreshServer(t, fl, shards, 8*(i+1))
			}
			if reports[1] != reports[4] || reports[4] != reports[16] {
				t.Fatalf("reports differ across shard counts:\n-- shards=1 --\n%s\n-- shards=4 --\n%s\n-- shards=16 --\n%s",
					reports[1], reports[4], reports[16])
			}
			checkGolden(t, "fleet"+g.suffix, reports[1])

			// The golden is also a conformance bar: perfect precision and
			// recall against the planted truth, exact accounting.
			snap := snapFromReplay(t, fl)
			if c := Evaluate(snap, fl); !c.Perfect() {
				t.Fatalf("imperfect conformance: %+v", c)
			}
		})
	}
}

// snapFromReplay re-runs a fleet through a bare engine (no HTTP) — the
// conformance score must not depend on the transport.
func snapFromReplay(t *testing.T, fl *Fleet) Snapshot {
	t.Helper()
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fl.Devices {
		if _, err := e.Ingest(d.ID, d.Records); err != nil {
			t.Fatalf("%s: %v", d.ID, err)
		}
	}
	return e.Snapshot()
}
