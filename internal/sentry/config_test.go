package sentry

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// swapRecords builds n draw-and-destroy swap pairs starting at start,
// with sequence numbers continuing from seq.
func swapRecords(device string, n int, start time.Duration, seq uint64) []Record {
	var recs []Record
	t := start
	for i := 0; i < n; i++ {
		recs = append(recs,
			Record{Device: device, Seq: seq, Method: MethodAddView, At: t},
			Record{Device: device, Seq: seq + 1, Method: MethodRemoveView, At: t + 3*time.Millisecond},
		)
		seq += 2
		t += 6 * time.Millisecond
	}
	return recs
}

// notifRecords builds n notifications spaced 10ms apart from start.
func notifRecords(device string, n int, start time.Duration, seq uint64) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Device: device, Seq: seq + uint64(i),
			Method: MethodEnqueueNotification,
			At:     start + time.Duration(i)*10*time.Millisecond,
		})
	}
	return recs
}

func TestApplyConfigVersioning(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.RulesVersion(); got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}
	base := e.ConfigSnapshot()
	base.Version = 0

	// Version 0 auto-assigns the next version.
	v, err := e.ApplyConfig(base)
	if err != nil || v != 2 {
		t.Fatalf("ApplyConfig(v0) = %d, %v; want 2, nil", v, err)
	}

	// Idempotent re-push of the active version with identical values.
	same := e.ConfigSnapshot()
	if v, err = e.ApplyConfig(same); err != nil || v != 2 {
		t.Fatalf("idempotent re-push = %d, %v; want 2, nil", v, err)
	}

	// Active version with different values is a conflict.
	conflict := same
	conflict.MinCalls++
	if _, err = e.ApplyConfig(conflict); err == nil {
		t.Fatal("conflicting re-push of active version accepted")
	}
	if e.RulesVersion() != 2 {
		t.Fatalf("version moved to %d on rejected update", e.RulesVersion())
	}

	// Stale version is rejected.
	stale := same
	stale.Version = 1
	if _, err = e.ApplyConfig(stale); err == nil {
		t.Fatal("stale version accepted")
	}

	// A forward jump is accepted — the router heals restarted peers by
	// pushing the ring's (higher) version at them.
	jump := same
	jump.Version = 10
	jump.MinSwaps++
	if v, err = e.ApplyConfig(jump); err != nil || v != 10 {
		t.Fatalf("version jump = %d, %v; want 10, nil", v, err)
	}

	// Invalid updates never touch the rules.
	bad := e.ConfigSnapshot()
	bad.Version = 0
	bad.MinCalls = 1
	if _, err = e.ApplyConfig(bad); err == nil {
		t.Fatal("invalid update accepted")
	}
	if e.RulesVersion() != 10 {
		t.Fatalf("version = %d after invalid update, want 10", e.RulesVersion())
	}
}

func TestConfigSnapshotEncodeParseRoundTrip(t *testing.T) {
	e, err := NewEngine(Config{Window: 2 * time.Second, MinCalls: 9, MinSwaps: 5, NotifFlood: 21, SketchBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	u := e.ConfigSnapshot()
	b, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseConfigUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("round trip drifted: %+v vs %+v", got, u)
	}
}

func TestParseConfigUpdateStrict(t *testing.T) {
	for _, bad := range []string{
		``,
		`{`,
		`{"window_ns": 3000000000, "unknown": 1}`,
		`{"window_ns": 3000000000}{"window_ns": 1}`, // trailing object
		`[1,2]`,
	} {
		if _, err := ParseConfigUpdate([]byte(bad)); err == nil {
			t.Errorf("ParseConfigUpdate(%q) accepted", bad)
		}
	}
}

// TestDetectionStampsConfigVersion: every detection carries the version
// of the rule set that produced it.
func TestDetectionStampsConfigVersion(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-a", swapRecords("dev-a", 8, 0, 0)); err != nil {
		t.Fatal(err)
	}
	d, ok := e.DetectionFor("dev-a")
	if !ok {
		t.Fatal("attacker stream not detected")
	}
	if d.ConfigVersion != 1 {
		t.Fatalf("detection version = %d, want 1", d.ConfigVersion)
	}

	// Swap (same values, next version); a later detection carries v2.
	u := e.ConfigSnapshot()
	u.Version = 0
	if _, err := e.ApplyConfig(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-b", swapRecords("dev-b", 8, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if d, _ := e.DetectionFor("dev-b"); d.ConfigVersion != 2 {
		t.Fatalf("post-swap detection version = %d, want 2", d.ConfigVersion)
	}
	// dev-a's detection keeps its original version.
	if d, _ := e.DetectionFor("dev-a"); d.ConfigVersion != 1 {
		t.Fatalf("pre-swap detection version rewrote to %d", d.ConfigVersion)
	}
}

// TestConfigSwapContinuousAccounting: a mid-stream swap neither loses
// window state nor re-judges past windows — 20 notifications land under
// a NotifFlood-30 rule (no flag), the rule tightens to 25, and 10 more
// notifications in the same window push the preserved count over the
// new threshold.
func TestConfigSwapContinuousAccounting(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-n", notifRecords("dev-n", 20, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if e.Detected("dev-n") {
		t.Fatal("flagged below threshold")
	}
	u := e.ConfigSnapshot()
	u.Version = 0
	u.NotifFlood = 25
	if _, err := e.ApplyConfig(u); err != nil {
		t.Fatal(err)
	}
	if e.Detected("dev-n") {
		t.Fatal("swap alone re-judged a past window")
	}
	if _, err := e.Ingest("dev-n", notifRecords("dev-n", 10, 200*time.Millisecond, 20)); err != nil {
		t.Fatal(err)
	}
	d, ok := e.DetectionFor("dev-n")
	if !ok {
		t.Fatal("preserved window count did not cross the tightened threshold")
	}
	if d.Pattern != PatternNotifyFlood || d.ConfigVersion != 2 {
		t.Fatalf("detection = %+v, want notify-flood at version 2", d)
	}
	if d.Calls < 25 {
		t.Fatalf("detection saw %d calls; pre-swap records were lost", d.Calls)
	}
}

// TestConfigSwapRebucket: changing the window (and so the bucket
// duration) remaps the per-device sketch instead of dropping it.
func TestConfigSwapRebucket(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-r", notifRecords("dev-r", 20, 0, 0)); err != nil {
		t.Fatal(err)
	}
	u := e.ConfigSnapshot()
	u.Version = 0
	u.Window = 2 * time.Second // bucketDur changes 187.5ms -> 125ms
	u.NotifFlood = 25
	if _, err := e.ApplyConfig(u); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-r", notifRecords("dev-r", 10, 250*time.Millisecond, 20)); err != nil {
		t.Fatal(err)
	}
	d, ok := e.DetectionFor("dev-r")
	if !ok {
		t.Fatal("sketch lost across re-bucketing")
	}
	if d.Calls < 25 {
		t.Fatalf("detection saw %d calls after re-bucket, want >= 25", d.Calls)
	}
}

// collectJournal records appends in memory; failN fails the first N.
type collectJournal struct {
	ds    []Detection
	failN int
}

func (j *collectJournal) Append(d Detection) error {
	if j.failN > 0 {
		j.failN--
		return fmt.Errorf("journal full")
	}
	j.ds = append(j.ds, d)
	return nil
}

func TestJournalAndRestore(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	j := &collectJournal{}
	e.SetJournal(j)
	if _, err := e.Ingest("dev-a", swapRecords("dev-a", 8, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-n", notifRecords("dev-n", 35, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if len(j.ds) != 2 {
		t.Fatalf("journaled %d detections, want 2", len(j.ds))
	}
	for _, d := range j.ds {
		if d.Device == "" {
			t.Fatalf("journaled detection missing device: %+v", d)
		}
	}

	// A fresh engine restored from the journal answers identically,
	// without re-seeing a single record.
	e2, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(j.ds); err != nil {
		t.Fatal(err)
	}
	for _, d := range j.ds {
		got, ok := e2.DetectionFor(d.Device)
		if !ok {
			t.Fatalf("%s lost across restore", d.Device)
		}
		if got != d {
			t.Fatalf("restored detection drifted: %+v vs %+v", got, d)
		}
	}
	snap := e2.Snapshot()
	if snap.Detected != 2 || snap.DevicesReported != 2 {
		t.Fatalf("restored accounting: %+v", snap)
	}
	// Restoring again is idempotent.
	if err := e2.Restore(j.ds); err != nil {
		t.Fatal(err)
	}
	if e2.DetectionsTotal() != 2 {
		t.Fatalf("double restore counted twice: %d", e2.DetectionsTotal())
	}
	// A bad device token is refused.
	if err := e2.Restore([]Detection{{Device: "bad device!"}}); err == nil {
		t.Fatal("restore accepted an invalid device token")
	}
}

func TestJournalErrorCountedNotBlocking(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetJournal(&collectJournal{failN: 1})
	if _, err := e.Ingest("dev-a", swapRecords("dev-a", 8, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if !e.Detected("dev-a") {
		t.Fatal("journal failure blocked the detection")
	}
	if e.JournalErrors() != 1 {
		t.Fatalf("JournalErrors = %d, want 1", e.JournalErrors())
	}
}

// TestSnapshotDeviceRows: the per-device accounting rows are exhaustive,
// sorted, and consistent with the totals.
func TestSnapshotDeviceRows(t *testing.T) {
	e, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-a", swapRecords("dev-a", 8, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev-c", notifRecords("dev-c", 3, 0, 0)); err != nil {
		t.Fatal(err)
	}
	e.MarkShed("dev-b")
	snap := e.Snapshot()
	if len(snap.Devices) != snap.DevicesReported {
		t.Fatalf("%d device rows for %d devices", len(snap.Devices), snap.DevicesReported)
	}
	counts := map[string]int{}
	var recs uint64
	for i, row := range snap.Devices {
		counts[row.Status]++
		recs += row.Records
		if i > 0 && snap.Devices[i-1].Device >= row.Device {
			t.Fatalf("device rows not sorted: %q >= %q", snap.Devices[i-1].Device, row.Device)
		}
		if (row.Status == "detected") != (row.Detection != nil) {
			t.Fatalf("row %q: status %q with detection %v", row.Device, row.Status, row.Detection)
		}
	}
	if counts["detected"] != snap.Detected || counts["shed"] != snap.Shed || counts["clean"] != snap.Clean {
		t.Fatalf("row statuses %v disagree with totals %+v", counts, snap)
	}
	if recs != snap.RecordsIngested {
		t.Fatalf("row records sum %d != total %d", recs, snap.RecordsIngested)
	}
}
