package sentry

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// helperEnv makes a re-exec'ed copy of the test binary behave as a
// sentryd node: it boots a Server on an ephemeral port, prints
// "helper: listening on ADDR" and serves until it is killed.
const helperEnv = "SENTRY_SIGKILL_HELPER"

func TestMain(m *testing.M) {
	if _, ok := os.LookupEnv(helperEnv); !ok {
		os.Exit(m.Run())
	}
	srv, err := NewServer(ServerConfig{
		QueueDepth: 64, // deeper than the replay's client count: no shedding
		procDelay:  3 * time.Millisecond,
	})
	if err != nil {
		os.Stderr.WriteString("helper: " + err.Error() + "\n")
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.Stderr.WriteString("helper: " + err.Error() + "\n")
		os.Exit(1)
	}
	os.Stdout.WriteString("helper: listening on " + ln.Addr().String() + "\n")
	err = (&http.Server{Handler: srv}).Serve(ln)
	os.Stderr.WriteString("helper: serve: " + err.Error() + "\n")
	os.Exit(1)
}

// spawnHelper re-execs the test binary as a sentryd node and returns
// its base URL once the listener is up. The caller kills it.
func spawnHelper(t *testing.T) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("helper exited before announcing its address (scan err: %v)", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "helper: listening on ")
	if !ok {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("unexpected helper banner %q", sc.Text())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, "http://" + addr
}

func detectionSet(snap Snapshot) map[string]string {
	set := make(map[string]string, len(snap.Detections))
	for _, d := range snap.Detections {
		set[d.Device] = d.Pattern
	}
	return set
}

// TestDetectionSurvivesSIGKILLRestart is the crash-semantics check for
// a stateless detection node: SIGKILL a node mid-replay, restart it
// fresh, rerun the fleet replay from the start — the final detection
// set must be identical to an uninterrupted run. sentryd keeps no
// persistent state by design (a restarted node re-derives everything
// from the re-played streams), so the property under test is that a
// kill can never corrupt what a fresh replay reports.
func TestDetectionSurvivesSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	fl, err := GenerateFleet(FleetConfig{Devices: 200, Attackers: 5, NotifAbusers: 3, Span: 8 * time.Second, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the uninterrupted run, straight through a bare engine
	// (transport cannot matter — that is the determinism contract).
	want := detectionSet(snapFromReplay(t, fl))
	if len(want) != 8 {
		t.Fatalf("reference run detected %d devices, want the 8 planted", len(want))
	}

	// Victim node: replay into it, kill it mid-replay.
	victim, base := spawnHelper(t)
	client := &http.Client{Timeout: 15 * time.Second}
	done := make(chan ReplayStats, 1)
	go func() { done <- ReplayFleet(client, base, fl, 16, 48) }()
	time.Sleep(15 * time.Millisecond)
	_ = victim.Process.Kill()
	_ = victim.Wait() // reap; kill signal expected
	partial := <-done
	t.Logf("interrupted replay: %d ok, %d errors before/after the kill", partial.OK, partial.Errors)

	// Restart fresh and rerun the whole replay from the start.
	restarted, base := spawnHelper(t)
	defer func() {
		_ = restarted.Process.Kill()
		_ = restarted.Wait()
	}()
	rs := ReplayFleet(client, base, fl, 16, 48)
	if rs.Errors > 0 {
		t.Fatalf("post-restart replay errors: %d (first: %s)", rs.Errors, rs.FirstError)
	}
	resp, err := client.Get(base + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	got := detectionSet(snap)
	if len(got) != len(want) {
		t.Fatalf("detection set size %d after restart, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for dev, pattern := range want {
		if got[dev] != pattern {
			t.Fatalf("device %s: pattern %q after restart, want %q", dev, got[dev], pattern)
		}
	}
	if snap.Detected+snap.Clean+snap.Shed != snap.DevicesReported || snap.DevicesReported != len(fl.Devices) {
		t.Fatalf("post-restart accounting broken: %+v", snap)
	}
}
