package sentry

import (
	"reflect"
	"testing"
	"time"
)

// overlayPairs builds n add/remove pairs for dev: the overlay is held
// for hold, then re-drawn gap after the remove. Sequence numbers are
// assigned in stream order.
func overlayPairs(dev string, n int, hold, gap time.Duration) []Record {
	var recs []Record
	var t time.Duration
	for i := 0; i < n; i++ {
		recs = append(recs,
			Record{Device: dev, Method: MethodAddView, At: t},
			Record{Device: dev, Method: MethodRemoveView, At: t + hold},
		)
		t += hold + gap
	}
	for i := range recs {
		recs[i].Seq = uint64(i)
	}
	return recs
}

func notes(dev string, n int, period time.Duration) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		recs = append(recs, Record{Device: dev, Seq: uint64(i), Method: MethodEnqueueNotification, At: time.Duration(i) * period})
	}
	return recs
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineDetectsDrawAndDestroy(t *testing.T) {
	e := mustEngine(t, Config{})
	// 100ms holds with 5ms re-draw gaps: the remove→add gap is the swap
	// signature; five pairs give 10 calls ≥ MinCalls and 4 swaps ≥ MinSwaps.
	recs := overlayPairs("attacker", 5, 100*time.Millisecond, 5*time.Millisecond)
	if n, err := e.Ingest("attacker", recs); err != nil || n != len(recs) {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	if !e.Detected("attacker") {
		t.Fatal("draw-and-destroy cadence not detected")
	}
	snap := e.Snapshot()
	if snap.Detected != 1 || len(snap.Detections) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	d := snap.Detections[0]
	if d.Pattern != PatternDrawAndDestroy || d.Device != "attacker" {
		t.Fatalf("detection: %+v", d)
	}
	if d.Swaps < 4 || d.Calls < 8 {
		t.Fatalf("detection under thresholds: %+v", d)
	}
	if d.MeanSwapGap != 5*time.Millisecond {
		t.Fatalf("mean swap gap %v, want 5ms", d.MeanSwapGap)
	}
}

func TestEngineBenignStaysClean(t *testing.T) {
	e := mustEngine(t, Config{})
	// The §VII-A benign scenario: seconds-long widget holds. Call count
	// never reaches MinCalls within one window and no gap is swap-scale.
	if _, err := e.Ingest("widget", overlayPairs("widget", 6, 4*time.Second, 3*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Adversarially benign: fast toggles that cross MinCalls in a window
	// but with every gap 5× MaxSwapGap.
	if _, err := e.Ingest("chatty", overlayPairs("chatty", 12, 250*time.Millisecond, 250*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Detected != 0 || snap.Clean != 2 {
		t.Fatalf("benign devices flagged: %+v", snap)
	}
}

func TestEngineNotifyFlood(t *testing.T) {
	e := mustEngine(t, Config{})
	// 30 notifications in 1.5s — well inside one 3s window.
	if _, err := e.Ingest("flooder", notes("flooder", 30, 50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Detected != 1 || snap.Detections[0].Pattern != PatternNotifyFlood {
		t.Fatalf("notify flood not flagged: %+v", snap)
	}
	// A slow trickle spanning many windows stays clean.
	if _, err := e.Ingest("slow", notes("slow", 40, 500*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if e.Detected("slow") {
		t.Fatal("slow notification trickle flagged")
	}

	// NotifFlood < 0 disables the rule entirely.
	off := mustEngine(t, Config{NotifFlood: -1})
	if _, err := off.Ingest("flooder", notes("flooder", 200, 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if off.Detected("flooder") {
		t.Fatal("notify-flood rule fired while disabled")
	}
}

func TestEngineSequenceContract(t *testing.T) {
	e := mustEngine(t, Config{})
	recs := overlayPairs("dev", 2, time.Second, time.Second)
	if _, err := e.Ingest("dev", recs); err != nil {
		t.Fatal(err)
	}
	// Replaying the same sequence range is rejected at the first record.
	if n, err := e.Ingest("dev", recs); err == nil || n != 0 {
		t.Fatalf("replayed batch: applied %d, err %v", n, err)
	}
	// A gap is fine (a shed batch legitimately skips its range)…
	later := []Record{{Device: "dev", Seq: 100, Method: MethodAddView, At: 10 * time.Second}}
	if _, err := e.Ingest("dev", later); err != nil {
		t.Fatalf("gapped seq rejected: %v", err)
	}
	// …and a violation mid-batch applies the valid prefix.
	mixed := []Record{
		{Device: "dev", Seq: 101, Method: MethodRemoveView, At: 11 * time.Second},
		{Device: "dev", Seq: 101, Method: MethodAddView, At: 12 * time.Second},
	}
	if n, err := e.Ingest("dev", mixed); err == nil || n != 1 {
		t.Fatalf("mid-batch violation: applied %d, err %v", n, err)
	}
	// A record carrying another device's ID never lands in this stream.
	alien := []Record{{Device: "other", Seq: 200, Method: MethodAddView, At: 0}}
	if n, err := e.Ingest("dev", alien); err == nil || n != 0 {
		t.Fatalf("cross-device record: applied %d, err %v", n, err)
	}
}

func TestEngineAccountingPrecedence(t *testing.T) {
	e := mustEngine(t, Config{})
	// detected > shed: a flagged device stays detected even after sheds.
	if _, err := e.Ingest("caught", overlayPairs("caught", 5, 100*time.Millisecond, 5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	e.MarkShed("caught")
	// shed > clean: an unflagged device with a shed batch is not clean.
	e.MarkShed("lossy")
	// clean: reported, nothing shed, nothing detected.
	if _, err := e.Ingest("calm", overlayPairs("calm", 1, time.Second, 0)); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Detected != 1 || snap.Shed != 1 || snap.Clean != 1 {
		t.Fatalf("precedence broken: %+v", snap)
	}
	if snap.Detected+snap.Clean+snap.Shed != snap.DevicesReported {
		t.Fatalf("accounting identity broken: %+v", snap)
	}
}

// TestEngineShardInvariance is the tentpole determinism claim at the
// engine level: the shard count picks a lock, never a result.
func TestEngineShardInvariance(t *testing.T) {
	fl, err := GenerateFleet(FleetConfig{Devices: 120, Attackers: 6, NotifAbusers: 3, Span: 6 * time.Second, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for _, shards := range []int{1, 4, 16} {
		e := mustEngine(t, Config{Shards: shards})
		for _, d := range fl.Devices {
			if _, err := e.Ingest(d.ID, d.Records); err != nil {
				t.Fatalf("shards=%d %s: %v", shards, d.ID, err)
			}
		}
		snaps = append(snaps, e.Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("snapshot differs between shard counts:\n%+v\nvs\n%+v", snaps[0], snaps[i])
		}
	}
}

// TestEngineBoundedMemoryUnderFlood floods one device far past RingCap
// inside a single window: per-device state must stay O(window) — ring
// capped, sketch capped — while the sketch keeps the call-rate estimate
// high enough that the flood is still detected.
func TestEngineBoundedMemoryUnderFlood(t *testing.T) {
	e := mustEngine(t, Config{})
	const n = 10000
	recs := make([]Record, n)
	for i := range recs {
		m := MethodAddView
		if i%2 == 1 {
			m = MethodRemoveView
		}
		// 50k records/s: the whole flood fits inside one 3s window.
		recs[i] = Record{Device: "flood", Seq: uint64(i), Method: m, At: time.Duration(i) * 20 * time.Microsecond}
	}
	if _, err := e.Ingest("flood", recs); err != nil {
		t.Fatal(err)
	}
	if !e.Detected("flood") {
		t.Fatal("overlay flood not detected")
	}
	if ev := e.ringEvictions.Load(); ev == 0 {
		t.Fatal("flood past RingCap caused no ring evictions")
	}
	sh := e.shardFor("flood")
	sh.mu.Lock()
	st := sh.devices["flood"]
	ring, buckets := len(st.ring), len(st.buckets)
	sh.mu.Unlock()
	if ring > e.cfg.RingCap {
		t.Fatalf("ring grew to %d, cap %d", ring, e.cfg.RingCap)
	}
	if buckets > e.cfg.SketchBuckets+1 {
		t.Fatalf("sketch grew to %d buckets, want ≤ %d", buckets, e.cfg.SketchBuckets+1)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: -1},
		{Window: -time.Second},
		{MinCalls: 1},
		{MaxSwapGap: -time.Millisecond},
		{MinSwaps: -2},
		{RingCap: 4},
		{SketchBuckets: 1},
	} {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("NewEngine(%+v) accepted an invalid config", cfg)
		}
	}
	e := mustEngine(t, Config{})
	cfg := e.Config()
	if cfg.Shards != 8 || cfg.Window != 3*time.Second || cfg.MinCalls != 8 ||
		cfg.MaxSwapGap != 50*time.Millisecond || cfg.MinSwaps != 4 ||
		cfg.NotifFlood != 30 || cfg.RingCap != 128 || cfg.SketchBuckets != 16 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
}
