package sentry

import (
	"bytes"
	"testing"
)

// FuzzWireDecode fuzzes the batch decoder with two oracles:
//
//  1. No input may panic the decoder (torn, binary, adversarial bytes
//     all return errors).
//  2. Round-trip invariance: any batch the decoder accepts must
//     re-encode to exactly the input bytes — the wire format is
//     canonical, so decode∘encode is the identity on its image.
//
// The committed corpus under testdata/fuzz/FuzzWireDecode seeds the
// interesting shapes: valid batches, torn tails, non-canonical
// numbers, wrong versions, oversized tokens.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte("s1 dev-00001 0 addView 0\n"))
	f.Add([]byte("s1 dev-00001 0 addView 0\ns1 dev-00001 1 removeView 137000000\n"))
	f.Add([]byte("s1 a.b_c-D 18446744073709551615 enqueueNotification 9223372036854775807\n"))
	f.Add([]byte("s1 dev 0 addView 0"))        // torn
	f.Add([]byte("s1 dev 007 addView 0\n"))    // non-canonical seq
	f.Add([]byte("s2 dev 0 addView 0\n"))      // unknown version
	f.Add([]byte("s1 dev 0 addView 01\n"))     // non-canonical timestamp
	f.Add([]byte("s1 dev 0 addView 0 extra\n")) // field count
	f.Add([]byte("\n"))
	f.Add([]byte(""))
	f.Add([]byte("s1  0 addView 0\n")) // empty device token
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		re, err := EncodeBatch(recs)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v\ninput: %q", err, data)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not byte-identical:\ninput:     %q\nre-encoded: %q", data, re)
		}
		// A second decode of the re-encoding must agree record-for-record.
		again, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("second decode yielded %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("record %d drifted across decode cycles: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
