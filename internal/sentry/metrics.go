package sentry

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the server's observability surface, rendered as Prometheus
// text on GET /metrics and folded into the GET /stats JSON snapshot.
//
// Batch contract (tested): every POST /v1/ingest increments IngestCalls
// and then exactly one of BatchesOK (decoded and fully applied),
// BatchesShed (refused 429 at the admission gate — the device is still
// accounted via Engine.MarkShed), BadBatches (malformed device, body,
// wire record or sequence violation) or RefusedBatches (503 after
// shutdown began), so
//
//	BatchesOK + BatchesShed + BadBatches + RefusedBatches == IngestCalls
//
// holds at every quiescent instant. The device-level identity
// (detected+clean+shed == devices_reported) lives on Engine.Snapshot.
type Metrics struct {
	IngestCalls    atomic.Uint64
	BatchesOK      atomic.Uint64
	BatchesShed    atomic.Uint64
	BadBatches     atomic.Uint64
	RefusedBatches atomic.Uint64

	// Per-endpoint HTTP request counters.
	ReportCalls  atomic.Uint64
	FlaggedCalls atomic.Uint64
	ConfigCalls  atomic.Uint64
	HealthCalls  atomic.Uint64
	ReadyCalls   atomic.Uint64
	StatsCalls   atomic.Uint64
	MetricsCalls atomic.Uint64

	// InFlight reads the admission gate's instantaneous occupancy; set
	// by the server.
	InFlight func() int
}

// WriteProm renders every metric in Prometheus text exposition format,
// engine counters included.
func (m *Metrics) WriteProm(w io.Writer, e *Engine) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sentry_ingest_batches_total", "Ingest requests received.", m.IngestCalls.Load())
	counter("sentry_ingest_ok_total", "Batches decoded and fully applied.", m.BatchesOK.Load())
	counter("sentry_shed_total", "Batches refused 429 at admission.", m.BatchesShed.Load())
	counter("sentry_bad_batches_total", "Batches rejected as malformed.", m.BadBatches.Load())
	counter("sentry_refused_total", "Batches refused 503 during shutdown.", m.RefusedBatches.Load())
	counter("sentry_records_total", "Records applied to device windows.", e.records.Load())
	counter("sentry_records_ignored_total", "Applied records no rule consumes.", e.ignored.Load())
	counter("sentry_ring_evictions_total", "Overlay records evicted by RingCap pressure.", e.ringEvictions.Load())
	counter("sentry_detections_total", "Devices flagged.", e.detections.Load())
	counter("sentry_journal_errors_total", "Detection journal appends that failed.", e.journalErrs.Load())
	fmt.Fprintf(w, "# HELP sentry_config_version Active detection rule-set version.\n# TYPE sentry_config_version gauge\nsentry_config_version %d\n", e.RulesVersion())
	for _, ep := range []struct {
		name string
		v    uint64
	}{
		{"ingest", m.IngestCalls.Load()}, {"report", m.ReportCalls.Load()},
		{"flagged", m.FlaggedCalls.Load()}, {"config", m.ConfigCalls.Load()},
		{"healthz", m.HealthCalls.Load()}, {"readyz", m.ReadyCalls.Load()},
		{"stats", m.StatsCalls.Load()}, {"metrics", m.MetricsCalls.Load()},
	} {
		fmt.Fprintf(w, "sentry_http_requests_total{endpoint=%q} %d\n", ep.name, ep.v)
	}
	if m.InFlight != nil {
		fmt.Fprintf(w, "# HELP sentry_inflight_batches Batches inside the admission gate.\n# TYPE sentry_inflight_batches gauge\nsentry_inflight_batches %d\n", m.InFlight())
	}
}

// Stats is the GET /stats JSON snapshot: the device-level accounting
// plus the batch-level counters.
type Stats struct {
	Snapshot
	IngestCalls    uint64 `json:"ingest_calls"`
	BatchesOK      uint64 `json:"batches_ok"`
	BatchesShed    uint64 `json:"batches_shed"`
	BadBatches     uint64 `json:"bad_batches"`
	RefusedBatches uint64 `json:"refused_batches"`
	InFlight       int    `json:"in_flight"`
}

// Snapshot assembles the current Stats from the metrics and engine.
func (m *Metrics) Snapshot(e *Engine) Stats {
	s := Stats{
		Snapshot:       e.Snapshot(),
		IngestCalls:    m.IngestCalls.Load(),
		BatchesOK:      m.BatchesOK.Load(),
		BatchesShed:    m.BatchesShed.Load(),
		BadBatches:     m.BadBatches.Load(),
		RefusedBatches: m.RefusedBatches.Load(),
	}
	if m.InFlight != nil {
		s.InFlight = m.InFlight()
	}
	return s
}
