package sentry

import (
	"fmt"
	"strings"
)

// Conformance scores a detection snapshot against a fleet's planted
// ground truth.
type Conformance struct {
	// TP/FP/FN classify detected devices against the planted attacker
	// set (pattern-agnostic: flagging a planted attacker counts as a
	// true positive even if the rule named the wrong pattern —
	// PatternMismatches counts those separately).
	TP, FP, FN int
	// PatternMismatches counts true positives whose detected pattern
	// differs from the planted one.
	PatternMismatches int
	// AccountingOK reports the exclusive device accounting identity
	// detected+clean+shed == devices_reported.
	AccountingOK bool
}

// Precision is TP/(TP+FP); 1 when nothing was detected.
func (c Conformance) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1 when nothing was planted.
func (c Conformance) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Perfect reports full recall with zero false positives and exact
// accounting — the conformance bar for an unshedded replay.
func (c Conformance) Perfect() bool {
	return c.FP == 0 && c.FN == 0 && c.PatternMismatches == 0 && c.AccountingOK
}

// Evaluate scores a snapshot against the fleet's truth.
func Evaluate(snap Snapshot, fl *Fleet) Conformance {
	c := Conformance{
		AccountingOK: snap.Detected+snap.Clean+snap.Shed == snap.DevicesReported,
	}
	detected := make(map[string]string, len(snap.Detections))
	for _, d := range snap.Detections {
		detected[d.Device] = d.Pattern
	}
	for dev, want := range detected {
		planted, ok := fl.Truth[dev]
		if !ok {
			c.FP++
			continue
		}
		c.TP++
		if planted != want {
			c.PatternMismatches++
		}
	}
	for dev := range fl.Truth {
		if _, ok := detected[dev]; !ok {
			c.FN++
		}
	}
	return c
}

// RenderFleetReport formats a replayed fleet's conformance report. The
// output is a pure function of the snapshot, the fleet and the replay
// stats — no wall-clock content — so a seeded replay renders
// byte-identically at any shard count and client concurrency, which is
// exactly what the golden tests pin.
func RenderFleetReport(snap Snapshot, fl *Fleet, rs ReplayStats) string {
	c := Evaluate(snap, fl)
	var sb strings.Builder
	fmt.Fprintf(&sb, "sentry fleet conformance — seed %d\n", fl.Cfg.Seed)
	fmt.Fprintf(&sb, "  fleet: %d devices (%d draw-and-destroy, %d notify-flood planted), span %v\n",
		fl.Cfg.Devices, fl.Cfg.Attackers, fl.Cfg.NotifAbusers, fl.Cfg.Span)
	accounting := "BROKEN"
	if c.AccountingOK {
		accounting = "exact"
	}
	fmt.Fprintf(&sb, "  reported %d = detected %d + clean %d + shed %d (accounting %s)\n",
		snap.DevicesReported, snap.Detected, snap.Clean, snap.Shed, accounting)
	fmt.Fprintf(&sb, "  records ingested: %d (ignored %d, ring evictions %d)\n",
		snap.RecordsIngested, snap.RecordsIgnored, snap.RingEvictions)
	fmt.Fprintf(&sb, "  replay: %d batches ok, %d shed, %d errors\n", rs.OK, rs.Shed, rs.Errors)
	fmt.Fprintf(&sb, "  truth: TP %d  FP %d  FN %d  pattern mismatches %d\n",
		c.TP, c.FP, c.FN, c.PatternMismatches)
	fmt.Fprintf(&sb, "  precision %.4f  recall %.4f\n", c.Precision(), c.Recall())
	if len(snap.Detections) > 0 {
		sb.WriteString("  detections:\n")
		for _, d := range snap.Detections {
			switch d.Pattern {
			case PatternDrawAndDestroy:
				fmt.Fprintf(&sb, "    %s  %s  at=%v calls=%d swaps=%d mean_gap=%v\n",
					d.Device, d.Pattern, d.At, d.Calls, d.Swaps, d.MeanSwapGap)
			default:
				fmt.Fprintf(&sb, "    %s  %s  at=%v calls=%d\n", d.Device, d.Pattern, d.At, d.Calls)
			}
		}
	}
	return sb.String()
}
