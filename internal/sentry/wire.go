package sentry

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// The sentry wire format carries device-stream transaction records — the
// per-device slice of the Binder transaction log that the §VII-A defense
// consumes — as one text line per record:
//
//	s1 <device> <seq> <method> <at_ns>\n
//
// where <device> and <method> are tokens over [A-Za-z0-9._-] (1..64
// bytes), <seq> is the device's strictly-increasing record sequence
// number (canonical decimal uint64) and <at_ns> is the record's virtual
// stream timestamp in nanoseconds (canonical decimal, fits in int64).
// "Canonical decimal" means no sign and no redundant leading zeros, so
// encoding is a bijection on valid records: for every line DecodeLine
// accepts, Encode(DecodeLine(line)) reproduces the input bytes exactly —
// the round-trip invariance the fuzz target pins.
//
// A batch is a concatenation of encoded lines. The final line must be
// newline-terminated; a batch whose last line lacks the terminator was
// torn mid-write (a crashed uploader, a truncated body) and is rejected
// as a whole with ErrTornBatch so a partial record can never be ingested
// as a shorter one.

// Method names carried on the wire. AddView/RemoveView mirror the
// simulator's System Server surface; EnqueueNotification is the
// notification-abuse extension (Knock-Knock) — the simulator does not
// emit it yet, but fleet streams and the engine's notify-flood rule do.
const (
	MethodAddView             = "addView"
	MethodRemoveView          = "removeView"
	MethodEnqueueNotification = "enqueueNotification"
)

// wireVersion tags every record line; a decoder refusing unknown
// versions is what lets the format evolve without silent misparses.
const wireVersion = "s1"

// maxTokenLen bounds device and method tokens.
const maxTokenLen = 64

// ErrTornBatch marks a batch whose final record line is not
// newline-terminated: the upload was cut mid-record.
var ErrTornBatch = errors.New("sentry: torn batch (final record line unterminated)")

// Record is one device-stream transaction record.
type Record struct {
	// Device identifies the reporting device.
	Device string
	// Seq is the device's record sequence number; the engine enforces
	// strict per-device monotonicity, so replayed or reordered uploads
	// are rejected instead of double-counted (gaps are fine — a shed
	// batch legitimately skips its sequence range).
	Seq uint64
	// Method is the observed Binder method.
	Method string
	// At is the record's virtual stream timestamp.
	At time.Duration
}

// ValidToken reports whether s is a legal device/method token —
// exported for the ring router, which validates device IDs before
// hashing them onto the ring.
func ValidToken(s string) bool { return validToken(s) }

// validToken reports whether s is a legal device/method token.
func validToken(s string) bool {
	if len(s) == 0 || len(s) > maxTokenLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the record's fields against the wire constraints.
func (r Record) Validate() error {
	if !validToken(r.Device) {
		return fmt.Errorf("sentry: bad device token %q", r.Device)
	}
	if !validToken(r.Method) {
		return fmt.Errorf("sentry: bad method token %q", r.Method)
	}
	if r.At < 0 {
		return fmt.Errorf("sentry: negative timestamp %d", r.At)
	}
	return nil
}

// Encode renders the record as one wire line (newline included).
func Encode(r Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return AppendRecord(nil, r)
}

// AppendRecord appends the record's wire line to dst and returns the
// extended slice. The record must be valid (Encode checks; batch
// encoders built from validated records may call this directly).
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return dst, err
	}
	dst = append(dst, wireVersion...)
	dst = append(dst, ' ')
	dst = append(dst, r.Device...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, r.Seq, 10)
	dst = append(dst, ' ')
	dst = append(dst, r.Method...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(r.At), 10)
	dst = append(dst, '\n')
	return dst, nil
}

// EncodeBatch renders a slice of records as one wire batch.
func EncodeBatch(recs []Record) ([]byte, error) {
	var dst []byte
	for i, r := range recs {
		var err error
		if dst, err = AppendRecord(dst, r); err != nil {
			return nil, fmt.Errorf("sentry: record %d: %w", i, err)
		}
	}
	return dst, nil
}

// canonicalUint parses a canonical decimal uint64: digits only, no
// redundant leading zero. Rejecting non-canonical spellings ("007",
// "+7") is what makes Encode∘DecodeLine the identity on valid lines.
func canonicalUint(tok []byte) (uint64, error) {
	if len(tok) == 0 {
		return 0, errors.New("empty number")
	}
	if len(tok) > 1 && tok[0] == '0' {
		return 0, fmt.Errorf("non-canonical number %q", tok)
	}
	return strconv.ParseUint(string(tok), 10, 64)
}

// DecodeLine parses one wire line (without its trailing newline).
func DecodeLine(line []byte) (Record, error) {
	var r Record
	fields := bytes.Split(line, []byte{' '})
	if len(fields) != 5 {
		return r, fmt.Errorf("sentry: record has %d fields, want 5", len(fields))
	}
	if string(fields[0]) != wireVersion {
		return r, fmt.Errorf("sentry: unknown wire version %q", fields[0])
	}
	r.Device = string(fields[1])
	seq, err := canonicalUint(fields[2])
	if err != nil {
		return r, fmt.Errorf("sentry: bad seq: %v", err)
	}
	r.Seq = seq
	r.Method = string(fields[3])
	at, err := canonicalUint(fields[4])
	if err != nil {
		return r, fmt.Errorf("sentry: bad timestamp: %v", err)
	}
	if at > math.MaxInt64 {
		return r, fmt.Errorf("sentry: timestamp %d overflows int64", at)
	}
	r.At = time.Duration(at)
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeBatch parses a wire batch into records. Any malformed line
// fails the whole batch — conformance over partial progress — and a
// missing final newline fails it with ErrTornBatch.
func DecodeBatch(b []byte) ([]Record, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if b[len(b)-1] != '\n' {
		return nil, ErrTornBatch
	}
	var recs []Record
	for ln := 0; len(b) > 0; ln++ {
		i := bytes.IndexByte(b, '\n')
		line := b[:i]
		b = b[i+1:]
		r, err := DecodeLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}
