package sentry

import (
	"reflect"
	"testing"
)

// FuzzConfigCodec drives the /v1/config JSON codec: anything
// ParseConfigUpdate accepts must survive an encode/parse round trip
// byte-for-byte at the struct level, and anything it (or Validate)
// rejects must leave a running engine's rule state untouched.
func FuzzConfigCodec(f *testing.F) {
	f.Add([]byte(`{"window_ns":3000000000,"min_calls":8,"max_swap_gap_ns":50000000,"min_swaps":4,"notif_flood":30,"sketch_buckets":16}`))
	f.Add([]byte(`{"version":7,"window_ns":2000000000,"min_calls":10,"max_swap_gap_ns":40000000,"min_swaps":5,"notif_flood":-1,"sketch_buckets":8}`))
	f.Add([]byte(`{"window_ns":1000000,"min_calls":2,"min_swaps":1,"notif_flood":1,"sketch_buckets":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"window_ns":0}`))
	f.Add([]byte(`{"window_ns":-3000000000,"min_calls":-8}`))
	f.Add([]byte(`{"window_ns":9223372036854775807,"min_calls":2147483647,"sketch_buckets":2147483647}`))
	f.Add([]byte(`{"window_ns":3000000000,"unknown_field":1}`))
	f.Add([]byte(`{"window_ns":3000000000}{"window_ns":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"window_ns":3000000000}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := ParseConfigUpdate(data)
		if err != nil {
			return // rejected input: nothing further to hold
		}

		// Accepted JSON must round-trip losslessly.
		enc, err := u.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v) after successful parse: %v", u, err)
		}
		again, err := ParseConfigUpdate(enc)
		if err != nil {
			t.Fatalf("re-parse of own encoding %q: %v", enc, err)
		}
		if !reflect.DeepEqual(again, u) {
			t.Fatalf("round trip drifted: %+v vs %+v", again, u)
		}

		// Applying the update must either succeed atomically or leave
		// the engine's rules exactly as they were — never tear.
		e, eerr := NewEngine(Config{})
		if eerr != nil {
			t.Fatal(eerr)
		}
		before := e.ConfigSnapshot()
		v, aerr := e.ApplyConfig(u)
		after := e.ConfigSnapshot()
		if aerr != nil {
			if u.Validate() == nil && u.Version == 0 {
				t.Fatalf("valid auto-versioned update rejected: %+v: %v", u, aerr)
			}
			if !reflect.DeepEqual(after, before) {
				t.Fatalf("rejected update tore rule state: %+v -> %+v", before, after)
			}
			return
		}
		if u.Validate() != nil {
			t.Fatalf("invalid update accepted: %+v", u)
		}
		if after.Version != v || e.RulesVersion() != v {
			t.Fatalf("applied version %d but snapshot says %d/%d", v, after.Version, e.RulesVersion())
		}
	})
}
