package sentry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/simrand"
)

// Device classes in a generated fleet. Attack classes reproduce the
// paper's draw-and-destroy cadence and the Knock-Knock notification
// flood; the benign classes are calibrated to stress the detector's
// specificity: chatty devices cross the MinCalls threshold but never
// produce MaxSwapGap-scale gaps, widget devices mirror the §VII-A
// benign music-widget scenario, quiet devices barely report.
const (
	ClassAttacker    = "attacker"     // draw-and-destroy overlay swaps
	ClassNotifAbuser = "notif-abuser" // notification flood
	ClassChatty      = "chatty"       // fast benign overlay toggles
	ClassWidget      = "widget"       // slow benign overlay toggles
	ClassQuiet       = "quiet"        // near-silent
)

// FleetConfig seeds a labeled fleet. The zero value of Span selects
// 20s; Devices must cover the planted attacker counts.
type FleetConfig struct {
	// Devices is the fleet size.
	Devices int
	// Attackers is the number of planted draw-and-destroy devices.
	Attackers int
	// NotifAbusers is the number of planted notification-flood devices.
	NotifAbusers int
	// Span is the simulated capture span per device stream.
	Span time.Duration
	// Seed drives every draw (via internal/simrand sub-streams).
	Seed int64
}

// FleetDevice is one device's labeled record stream.
type FleetDevice struct {
	ID      string
	Class   string
	Records []Record
}

// Fleet is a generated, labeled fleet: the streams plus the planted
// ground truth. Because truth is generated, any replay of the fleet
// doubles as a conformance corpus — Evaluate scores a detection
// snapshot against Truth.
type Fleet struct {
	Cfg     FleetConfig
	Devices []FleetDevice
	// Truth maps planted attack devices to their pattern.
	Truth map[string]string
}

// Records reports the total record count across the fleet.
func (f *Fleet) Records() int {
	n := 0
	for _, d := range f.Devices {
		n += len(d.Records)
	}
	return n
}

// GenerateFleet builds the fleet deterministically from cfg. Attack
// devices are planted at seeded positions among the benign population;
// every stream draws only from its own derived sub-stream, so the
// fleet is byte-stable under replay and device streams are independent
// of one another.
func GenerateFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("sentry: fleet of %d devices", cfg.Devices)
	}
	if cfg.Attackers < 0 || cfg.NotifAbusers < 0 || cfg.Attackers+cfg.NotifAbusers > cfg.Devices {
		return nil, fmt.Errorf("sentry: %d+%d planted attackers exceed %d devices",
			cfg.Attackers, cfg.NotifAbusers, cfg.Devices)
	}
	if cfg.Span == 0 {
		cfg.Span = 20 * time.Second
	}
	if cfg.Span < time.Second {
		return nil, fmt.Errorf("sentry: span %v too short", cfg.Span)
	}
	master := simrand.New(cfg.Seed)
	// Plant the attackers at seeded positions.
	perm := master.Derive("fleet/placement").Perm(cfg.Devices)
	class := make(map[int]string, cfg.Attackers+cfg.NotifAbusers)
	for i := 0; i < cfg.Attackers; i++ {
		class[perm[i]] = ClassAttacker
	}
	for i := 0; i < cfg.NotifAbusers; i++ {
		class[perm[cfg.Attackers+i]] = ClassNotifAbuser
	}

	fl := &Fleet{
		Cfg:     cfg,
		Devices: make([]FleetDevice, cfg.Devices),
		Truth:   make(map[string]string, cfg.Attackers+cfg.NotifAbusers),
	}
	for i := 0; i < cfg.Devices; i++ {
		rng := master.DeriveIndexed("fleet/device", i)
		d := FleetDevice{ID: fmt.Sprintf("dev-%05d", i)}
		switch class[i] {
		case ClassAttacker:
			d.Class = ClassAttacker
			d.Records = attackerStream(rng, d.ID, cfg.Span)
			fl.Truth[d.ID] = PatternDrawAndDestroy
		case ClassNotifAbuser:
			d.Class = ClassNotifAbuser
			d.Records = notifAbuserStream(rng, d.ID, cfg.Span)
			fl.Truth[d.ID] = PatternNotifyFlood
		default:
			switch p := rng.Float64(); {
			case p < 0.20:
				d.Class = ClassChatty
				d.Records = chattyStream(rng, d.ID, cfg.Span)
			case p < 0.70:
				d.Class = ClassWidget
				d.Records = widgetStream(rng, d.ID, cfg.Span)
			default:
				d.Class = ClassQuiet
				d.Records = quietStream(rng, d.ID, cfg.Span)
			}
		}
		finalize(d.Records)
		fl.Devices[i] = d
	}
	return fl, nil
}

// finalize time-sorts a stream and assigns its sequence numbers.
func finalize(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	for i := range recs {
		recs[i].Seq = uint64(i)
	}
}

func ms(rng *simrand.Source, mean, jitter, lo, hi float64) time.Duration {
	return time.Duration(rng.TruncNormal(mean, jitter, lo, hi) * float64(time.Millisecond))
}

// attackerStream is the paper's draw-and-destroy cadence: hold the
// overlay for the attack window D (~80–240ms), destroy it, and re-draw
// within single-digit milliseconds. The remove→add gap is the
// millisecond-scale swap signature §VII-A keys on.
func attackerStream(rng *simrand.Source, id string, span time.Duration) []Record {
	var recs []Record
	t := time.Duration(rng.Float64() * float64(2*time.Second))
	for t < span {
		hold := ms(rng, 140, 35, 80, 240)
		gap := ms(rng, 3, 1.5, 1, 8)
		recs = append(recs,
			Record{Device: id, Method: MethodAddView, At: t},
			Record{Device: id, Method: MethodRemoveView, At: t + hold},
		)
		t += hold + gap
	}
	return recs
}

// notifAbuserStream floods the notification shade: one
// enqueueNotification every ~35–90ms, guaranteeing ≥30 per 3s window.
func notifAbuserStream(rng *simrand.Source, id string, span time.Duration) []Record {
	var recs []Record
	t := time.Duration(rng.Float64() * float64(2*time.Second))
	for t < span {
		recs = append(recs, Record{Device: id, Method: MethodEnqueueNotification, At: t})
		t += ms(rng, 55, 15, 35, 90)
	}
	return recs
}

// chattyStream is the adversarially-benign class: overlay toggles fast
// enough to cross MinCalls in a window, but with every gap clamped to
// ≥250ms — five times MaxSwapGap — so the swap rule must be the thing
// keeping it clean. A slow notification trickle rides along.
func chattyStream(rng *simrand.Source, id string, span time.Duration) []Record {
	var recs []Record
	t := time.Duration(rng.Float64() * float64(3*time.Second))
	add := true
	for t < span {
		m := MethodRemoveView
		if add {
			m = MethodAddView
		}
		recs = append(recs, Record{Device: id, Method: m, At: t})
		add = !add
		t += ms(rng, 350, 60, 250, 450)
	}
	for t = time.Duration(rng.Float64() * float64(2*time.Second)); t < span; t += ms(rng, 2200, 400, 1500, 3000) {
		recs = append(recs, Record{Device: id, Method: MethodEnqueueNotification, At: t})
	}
	return recs
}

// widgetStream mirrors the §VII-A benign scenario: a floating widget
// shown for seconds at a time.
func widgetStream(rng *simrand.Source, id string, span time.Duration) []Record {
	var recs []Record
	t := time.Duration(rng.Float64() * float64(4*time.Second))
	for t < span {
		hold := ms(rng, 4500, 900, 3000, 6000)
		recs = append(recs, Record{Device: id, Method: MethodAddView, At: t})
		if t+hold < span {
			recs = append(recs, Record{Device: id, Method: MethodRemoveView, At: t + hold})
		}
		t += hold + ms(rng, 4000, 800, 2500, 5500)
	}
	return recs
}

// quietStream barely reports: one short-lived overlay or a couple of
// notifications across the whole span.
func quietStream(rng *simrand.Source, id string, span time.Duration) []Record {
	var recs []Record
	lead := span - 2*time.Second
	if lead <= 0 {
		lead = span / 2
	}
	t := time.Duration(rng.Float64() * float64(lead))
	if rng.Bool(0.5) {
		hold := ms(rng, 1500, 500, 500, 2000)
		recs = append(recs,
			Record{Device: id, Method: MethodAddView, At: t},
			Record{Device: id, Method: MethodRemoveView, At: t + hold},
		)
	} else {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			recs = append(recs, Record{Device: id, Method: MethodEnqueueNotification, At: t})
			t += ms(rng, 3000, 1000, 1000, 6000)
		}
	}
	return recs
}

// segments splits a stream into batches of at most batch records.
func segments(recs []Record, batch int) [][]Record {
	if batch < 1 {
		batch = 1
	}
	var out [][]Record
	for len(recs) > batch {
		out = append(out, recs[:batch])
		recs = recs[batch:]
	}
	if len(recs) > 0 {
		out = append(out, recs)
	}
	return out
}

// ReplayStats aggregates one fleet replay.
type ReplayStats struct {
	Batches int // batches sent
	OK      int // 200 responses
	Shed    int // 429 responses (after any retries)
	Errors  int // transport errors and unexpected statuses
	// Retried counts re-sends after a 429 (Retry-After honored);
	// Abandoned counts batches still shed when the retry budget ran out.
	Retried   int
	Abandoned int
	// FirstError samples the first failure for diagnostics.
	FirstError string
}

func (rs *ReplayStats) addError(err string) {
	rs.Errors++
	if rs.FirstError == "" {
		rs.FirstError = err
	}
}

// merge folds one client's stats into the total.
func (rs *ReplayStats) merge(o ReplayStats) {
	rs.Batches += o.Batches
	rs.OK += o.OK
	rs.Shed += o.Shed
	rs.Errors += o.Errors
	rs.Retried += o.Retried
	rs.Abandoned += o.Abandoned
	if rs.FirstError == "" {
		rs.FirstError = o.FirstError
	}
}

// ReplayOptions tunes ReplayFleetOpts beyond the basic open-loop
// replay.
type ReplayOptions struct {
	// Clients is the replay goroutine count (default 1, clamped to the
	// device count).
	Clients int
	// Batch bounds records per ingest batch (default 1).
	Batch int
	// Retry429 is the number of re-sends of a shed batch, honoring the
	// server's Retry-After hint (capped at 300ms, jittered ±50% from the
	// seeded stream) before abandoning it. 0 keeps the pure open-loop
	// behavior: a shed batch is dropped and the stream continues.
	Retry429 int
	// Seed drives the per-client retry jitter streams (default 1).
	Seed int64
}

// ReplayFleet replays the fleet's streams against a sentry server at
// base (e.g. "http://127.0.0.1:8475") from the given number of client
// goroutines, open-loop: clients send as the schedule dictates and
// never slow down for the server — an overloaded node sheds, it is not
// protected by client backoff.
//
// Device i is owned by client i%clients; each client interleaves its
// devices round-robin, one batch per device per pass, so per-device
// batches arrive strictly in stream order (the engine's sequence
// contract) while the fleet's streams interleave freely. 429 responses
// are counted shed and the stream continues with the next batch — the
// skipped sequence range is exactly the gap the engine tolerates.
// Transport errors are counted, not fatal, so a replay can ride
// through a server restart.
func ReplayFleet(client *http.Client, base string, fl *Fleet, clients, batch int) ReplayStats {
	return ReplayFleetOpts(client, base, fl, ReplayOptions{Clients: clients, Batch: batch})
}

// ReplayFleetOpts is ReplayFleet with the full option set.
func ReplayFleetOpts(client *http.Client, base string, fl *Fleet, opts ReplayOptions) ReplayStats {
	clients := opts.Clients
	if clients < 1 {
		clients = 1
	}
	if clients > len(fl.Devices) {
		clients = len(fl.Devices)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	master := simrand.New(seed)
	// Per-client streams are derived up front: Derive advances the
	// parent source, so deriving inside the goroutines would race.
	rngs := make([]*simrand.Source, clients)
	for c := range rngs {
		rngs[c] = master.DeriveIndexed("sentry/replay", c)
	}
	stats := make([]ReplayStats, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rngs[c]
			type devReplay struct {
				id   string
				segs [][]Record
			}
			var devs []devReplay
			for i := c; i < len(fl.Devices); i += clients {
				d := fl.Devices[i]
				if len(d.Records) == 0 {
					continue
				}
				devs = append(devs, devReplay{id: d.ID, segs: segments(d.Records, opts.Batch)})
			}
			for pass := 0; ; pass++ {
				sent := false
				for _, d := range devs {
					if pass >= len(d.segs) {
						continue
					}
					sent = true
					postBatch(client, base, d.id, d.segs[pass], &stats[c], opts.Retry429, rng)
				}
				if !sent {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	var total ReplayStats
	for _, st := range stats {
		total.merge(st)
	}
	return total
}

// retryAfterCap bounds how long a replay client honors a Retry-After
// hint — replays are compressed-time, so a literal multi-second hint
// would stall the stream far past the shed window it describes.
const retryAfterCap = 300 * time.Millisecond

// retryDelay derives the pre-retry sleep from the 429's Retry-After
// hint: capped, then jittered uniformly in [0.5x, 1.5x] from the
// client's seeded stream so retries from many clients decorrelate.
func retryDelay(resp *http.Response, rng *simrand.Source) time.Duration {
	hint := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
			hint = time.Duration(sec) * time.Second
		}
	}
	if hint > retryAfterCap {
		hint = retryAfterCap
	}
	return time.Duration(float64(hint) * (0.5 + rng.Float64()))
}

// postBatch sends one device batch and classifies the outcome,
// re-sending shed batches up to retry429 times with the server's
// (capped, jittered) Retry-After hint between attempts.
func postBatch(client *http.Client, base, device string, recs []Record, rs *ReplayStats, retry429 int, rng *simrand.Source) {
	rs.Batches++
	body, err := EncodeBatch(recs)
	if err != nil {
		rs.addError(fmt.Sprintf("encode %s: %v", device, err))
		return
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/ingest?device="+device, "text/plain", bytes.NewReader(body))
		if err != nil {
			rs.addError(fmt.Sprintf("post %s: %v", device, err))
			return
		}
		delay := retryDelay(resp, rng)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			rs.OK++
			return
		case http.StatusTooManyRequests:
			if attempt < retry429 {
				rs.Retried++
				time.Sleep(delay)
				continue
			}
			rs.Shed++
			if retry429 > 0 {
				rs.Abandoned++
			}
			return
		default:
			rs.addError(fmt.Sprintf("post %s: status %d", device, resp.StatusCode))
			return
		}
	}
}
