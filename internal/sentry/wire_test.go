package sentry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWireRoundTrip(t *testing.T) {
	recs := []Record{
		{Device: "dev-00001", Seq: 0, Method: MethodAddView, At: 0},
		{Device: "dev-00001", Seq: 1, Method: MethodRemoveView, At: 137 * time.Millisecond},
		{Device: "a.b_c-D", Seq: 18446744073709551615, Method: MethodEnqueueNotification, At: 1<<62 - 1},
	}
	for _, r := range recs {
		line, err := Encode(r)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", r, err)
		}
		if line[len(line)-1] != '\n' {
			t.Fatalf("Encode(%+v) not newline-terminated: %q", r, line)
		}
		got, err := DecodeLine(line[:len(line)-1])
		if err != nil {
			t.Fatalf("DecodeLine(%q): %v", line, err)
		}
		if got != r {
			t.Fatalf("round trip drifted: %+v -> %+v", r, got)
		}
	}
	batch, err := EncodeBatch(recs)
	if err != nil {
		t.Fatalf("EncodeBatch: %v", err)
	}
	got, err := DecodeBatch(batch)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d drifted: %+v -> %+v", i, recs[i], got[i])
		}
	}
	// Decode∘Encode is byte-identity on valid batches.
	re, err := EncodeBatch(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, batch) {
		t.Fatalf("re-encoded batch differs:\n%q\nvs\n%q", re, batch)
	}
}

func TestWireEncodeRejectsInvalid(t *testing.T) {
	for _, r := range []Record{
		{Device: "", Method: MethodAddView},
		{Device: "dev with space", Method: MethodAddView},
		{Device: strings.Repeat("x", 65), Method: MethodAddView},
		{Device: "dev", Method: ""},
		{Device: "dev", Method: "addView", At: -1},
	} {
		if _, err := Encode(r); err == nil {
			t.Errorf("Encode(%+v) accepted an invalid record", r)
		}
	}
}

func TestWireDecodeLineRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name, line string
	}{
		{"empty", ""},
		{"too few fields", "s1 dev 0 addView"},
		{"too many fields", "s1 dev 0 addView 0 extra"},
		{"unknown version", "s2 dev 0 addView 0"},
		{"leading-zero seq", "s1 dev 007 addView 0"},
		{"signed seq", "s1 dev +7 addView 0"},
		{"non-numeric seq", "s1 dev x addView 0"},
		{"empty seq", "s1 dev  addView 0"},
		{"leading-zero timestamp", "s1 dev 0 addView 01"},
		{"timestamp overflows int64", "s1 dev 0 addView 9223372036854775808"},
		{"bad device token", "s1 d#v 0 addView 0"},
		{"double space", "s1 dev 0  addView 0"},
	} {
		if _, err := DecodeLine([]byte(tc.line)); err == nil {
			t.Errorf("%s: DecodeLine(%q) accepted a malformed line", tc.name, tc.line)
		}
	}
}

func TestWireDecodeBatch(t *testing.T) {
	if recs, err := DecodeBatch(nil); err != nil || recs != nil {
		t.Fatalf("DecodeBatch(nil) = %v, %v; want nil, nil", recs, err)
	}
	if _, err := DecodeBatch([]byte("s1 dev 0 addView 0")); !errors.Is(err, ErrTornBatch) {
		t.Fatalf("unterminated batch: got %v, want ErrTornBatch", err)
	}
	if _, err := DecodeBatch([]byte("s1 dev 0 addView 0\ns1 dev 1 addView")); !errors.Is(err, ErrTornBatch) {
		t.Fatalf("torn second line: got %v, want ErrTornBatch", err)
	}
	// One malformed line fails the whole batch, with its line number.
	_, err := DecodeBatch([]byte("s1 dev 0 addView 0\nbogus line here yes no\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line 2: got %v, want error naming line 2", err)
	}
}

// TestWireFleetBatchesRoundTrip pushes every generated fleet stream
// through the codec: the wire format must carry everything the
// generator can produce.
func TestWireFleetBatchesRoundTrip(t *testing.T) {
	fl, err := GenerateFleet(FleetConfig{Devices: 40, Attackers: 3, NotifAbusers: 2, Span: 5 * time.Second, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fl.Devices {
		b, err := EncodeBatch(d.Records)
		if err != nil {
			t.Fatalf("%s: encode: %v", d.ID, err)
		}
		got, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", d.ID, err)
		}
		if len(got) != len(d.Records) {
			t.Fatalf("%s: %d records round-tripped to %d", d.ID, len(d.Records), len(got))
		}
		for i := range got {
			if got[i] != d.Records[i] {
				t.Fatalf("%s record %d drifted: %+v -> %+v", d.ID, i, d.Records[i], got[i])
			}
		}
	}
}
