package sentry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ServerConfig tunes a Server. The zero value selects the documented
// defaults.
type ServerConfig struct {
	// Engine configures the detection engine.
	Engine Config
	// QueueDepth bounds the batches admitted concurrently; a full gate
	// sheds with 429 + Retry-After and the shed batch's device is
	// accounted via Engine.MarkShed (default 64). This is vetd's
	// admission design with the queue folded into the handlers: a
	// token reserves a processing slot, and with no token free the
	// request is refused immediately instead of queuing without bound.
	QueueDepth int
	// MaxBodyBytes bounds ingest bodies (default 4 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 sheds (default 1s).
	RetryAfter time.Duration

	// procDelay stalls each admitted batch while it holds its gate
	// token; tests use it to force contention and shedding.
	procDelay time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the streaming detection service; it implements
// http.Handler.
//
// Endpoints: POST /v1/ingest?device=ID (wire-format record batch for
// one device), GET /v1/report (deterministic fleet snapshot),
// GET /v1/flagged?device=ID (was this device ever flagged — answered
// from restored journal state after a crash), POST /v1/config (live
// rule-set swap, see config.go), GET /healthz, GET /readyz,
// GET /metrics, GET /stats.
type Server struct {
	cfg     ServerConfig
	engine  *Engine
	metrics *Metrics
	gate    chan struct{}
	mux     *http.ServeMux
	closed  atomic.Bool
}

// NewServer assembles a server around a fresh engine.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	engine, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		engine:  engine,
		metrics: &Metrics{},
		gate:    make(chan struct{}, cfg.QueueDepth),
		mux:     http.NewServeMux(),
	}
	s.metrics.InFlight = func() int { return len(s.gate) }
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/flagged", s.handleFlagged)
	s.mux.HandleFunc("POST /v1/config", s.handleConfig)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

// Engine exposes the underlying detector (read-mostly use: snapshots,
// detection queries).
func (s *Server) Engine() *Engine { return s.engine }

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops admission: subsequent ingests are refused with 503.
// Batches already inside the gate complete. Report and observability
// endpoints keep answering so a draining node can still be inspected.
func (s *Server) Close() { s.closed.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// IngestResponse answers a successful ingest.
type IngestResponse struct {
	Device   string `json:"device"`
	Records  int    `json:"records"`
	Detected bool   `json:"detected"`
	// Degraded is set by the ring router when the batch was absorbed by
	// its local fallback engine because no peer acked; a plain sentryd
	// never sets it.
	Degraded bool `json:"degraded,omitempty"`
}

// FlaggedResponse answers GET /v1/flagged?device=ID.
type FlaggedResponse struct {
	Device    string     `json:"device"`
	Flagged   bool       `json:"flagged"`
	Detection *Detection `json:"detection,omitempty"`
}

// ConfigResponse answers a successful POST /v1/config with the version
// now active.
type ConfigResponse struct {
	Version uint64 `json:"version"`
}

// ErrorResponse answers a refused or failed ingest.
type ErrorResponse struct {
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// handleIngest classifies every request into exactly one of the four
// batch outcomes (ok / shed / bad / refused) — see the Metrics
// contract — and keeps the device-level accounting exact: a device
// whose batch sheds is marked on the engine before the 429 goes out.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.metrics.IngestCalls.Add(1)
	device := r.URL.Query().Get("device")
	if !validToken(device) {
		s.metrics.BadBatches.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sentry: bad device %q", device))
		return
	}
	if s.closed.Load() {
		s.metrics.RefusedBatches.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("sentry: shutting down"))
		return
	}
	select {
	case s.gate <- struct{}{}:
	default:
		// Admission gate full: shed. The device header is all we need
		// for accounting — the body is never read, so a flood of
		// oversized batches cannot make shedding expensive.
		s.engine.MarkShed(device)
		s.metrics.BatchesShed.Add(1)
		s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("sentry: admission gate full"))
		return
	}
	defer func() { <-s.gate }()
	if s.cfg.procDelay > 0 {
		time.Sleep(s.cfg.procDelay)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.BadBatches.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sentry: read body: %w", err))
		return
	}
	recs, err := DecodeBatch(body)
	if err != nil {
		s.metrics.BadBatches.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(recs) == 0 {
		s.metrics.BadBatches.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sentry: empty batch"))
		return
	}
	n, err := s.engine.Ingest(device, recs)
	if err != nil {
		// A sequence violation or device mismatch is a client bug, not
		// overload: records before the violation are applied (they are
		// legitimate stream state), the batch is classified bad.
		s.metrics.BadBatches.Add(1)
		s.writeError(w, http.StatusConflict, fmt.Errorf("applied %d: %w", n, err))
		return
	}
	s.metrics.BatchesOK.Add(1)
	s.writeJSON(w, http.StatusOK, IngestResponse{
		Device:   device,
		Records:  n,
		Detected: s.engine.Detected(device),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.metrics.ReportCalls.Add(1)
	s.writeJSON(w, http.StatusOK, s.engine.Snapshot())
}

// handleFlagged answers "was this device ever flagged". On a node wired
// to a sentrystore the answer survives a SIGKILL: restarts restore the
// journal before serving, so the response bytes match pre-crash ones.
func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	s.metrics.FlaggedCalls.Add(1)
	device := r.URL.Query().Get("device")
	if !validToken(device) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sentry: bad device %q", device))
		return
	}
	resp := FlaggedResponse{Device: device}
	if d, ok := s.engine.DetectionFor(device); ok {
		resp.Flagged = true
		resp.Detection = &d
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleConfig swaps the live rule set. Allowed even while the node is
// draining: config is control plane, not ingest, and a router healing a
// restarted peer must never be refused. 400 = malformed or invalid
// update, 409 = stale or conflicting version; neither touches the
// running rules.
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	s.metrics.ConfigCalls.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sentry: read body: %w", err))
		return
	}
	u, err := ParseConfigUpdate(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.engine.ApplyConfig(u)
	if err != nil {
		status := http.StatusBadRequest
		if u.Validate() == nil { // codec+bounds fine: it's a version conflict
			status = http.StatusConflict
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ConfigResponse{Version: v})
}

// handleHealthz is pure liveness: the process is up and answering.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.HealthCalls.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","in_flight":%d}`+"\n", len(s.gate))
}

// handleReadyz is readiness: the node will usefully admit a batch right
// now. Not ready (503) once shutdown began or while the admission gate
// is saturated — a node that would answer 429 is alive but should not
// receive routed traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.metrics.ReadyCalls.Add(1)
	inflight := len(s.gate)
	status, state := http.StatusOK, "ready"
	switch {
	case s.closed.Load():
		status, state = http.StatusServiceUnavailable, "shutting-down"
	case inflight >= s.cfg.QueueDepth:
		status, state = http.StatusServiceUnavailable, "shedding"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"in_flight":%d,"gate_cap":%d}`+"\n", state, inflight, s.cfg.QueueDepth)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.MetricsCalls.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w, s.engine)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.StatsCalls.Add(1)
	s.writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.engine))
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{}
	if err != nil {
		resp.Error = err.Error()
	}
	if status == http.StatusTooManyRequests {
		sec := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		resp.RetryAfterSec = sec
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
