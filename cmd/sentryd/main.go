// Command sentryd serves the streaming fleet-scale detection service
// (internal/sentry) over HTTP: POST /v1/ingest, GET /v1/report,
// GET /v1/flagged, POST /v1/config, GET /healthz, GET /readyz,
// GET /metrics, GET /stats.
//
// Each POST /v1/ingest carries one wire-format record batch for one
// device; the engine maintains per-device sliding windows (sharded by
// device ID) and flags draw-and-destroy overlay swaps and
// notification floods as they stream in. Admission is bounded: when
// -queue batches are already in flight the node sheds with 429 and the
// shed device stays accounted, so detected+clean+shed always equals
// devices_reported.
//
// -store DIR makes detections crash-safe: every flag is appended to a
// fsynced journal (internal/sentrystore) the instant it fires, and a
// restarted node recovers the journal before serving, so
// GET /v1/flagged answers byte-identically across a SIGKILL. -compact
// rewrites the journal (one record per key) at startup.
//
// It prints "sentryd: listening on ADDR" once the listener is bound
// (with -addr :0 the printed address carries the ephemeral port, which
// is how the verify.sh smoke stage finds it) and shuts down cleanly on
// SIGINT or SIGTERM: stop admitting, drain in-flight batches, print the
// final accounting, exit 0.
//
// Usage:
//
//	sentryd -addr :8475 -shards 8 -queue 64 -window 3s -store /var/lib/sentryd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/sentry"
	"repro/internal/sentrystore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8475", "listen address (host:port; :0 picks an ephemeral port)")
		shards     = flag.Int("shards", 8, "device state shard count (locking only; never affects results)")
		queue      = flag.Int("queue", 64, "admission gate depth (full gate sheds with 429)")
		window     = flag.Duration("window", 3*time.Second, "sliding detection window")
		minCalls   = flag.Int("min-calls", 8, "overlay calls per window before the swap rule evaluates")
		maxGap     = flag.Duration("max-gap", 50*time.Millisecond, "maximum remove->add gap counted as a swap")
		minSwaps   = flag.Int("min-swaps", 4, "swaps per window that flag draw-and-destroy")
		notifFlood = flag.Int("notif-flood", 30, "notifications per window that flag notify-flood (-1 disables)")
		ringCap    = flag.Int("ring", 128, "per-device overlay ring capacity (bounded memory under flood)")
		storeDir   = flag.String("store", "", "detection journal directory (crash-safe sentrystore; empty disables)")
		compact    = flag.Bool("compact", false, "compact the detection journal at startup")
	)
	flag.Parse()

	srv, err := sentry.NewServer(sentry.ServerConfig{
		Engine: sentry.Config{
			Shards:     *shards,
			Window:     *window,
			MinCalls:   *minCalls,
			MaxSwapGap: *maxGap,
			MinSwaps:   *minSwaps,
			NotifFlood: *notifFlood,
			RingCap:    *ringCap,
		},
		QueueDepth: *queue,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentryd: %v\n", err)
		return 2
	}
	defer srv.Close()

	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sentryd: store dir: %v\n", err)
			return 1
		}
		store, err := sentrystore.Open(filepath.Join(*storeDir, "flags.store"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sentryd: %v\n", err)
			return 1
		}
		defer store.Close()
		if *compact {
			if err := store.Compact(); err != nil {
				fmt.Fprintf(os.Stderr, "sentryd: compact: %v\n", err)
				return 1
			}
		}
		ds, err := store.All()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sentryd: %v\n", err)
			return 1
		}
		if err := srv.Engine().Restore(ds); err != nil {
			fmt.Fprintf(os.Stderr, "sentryd: %v\n", err)
			return 1
		}
		srv.Engine().SetJournal(sentrystore.Flagger{S: store, Window: *window})
		st := store.Stats()
		fmt.Printf("sentryd: store %s recovered %d detections (torn tail: %v)\n",
			store.Path(), st.Recovered, st.TornTail)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentryd: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("sentryd: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Println("sentryd: signal received, shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sentryd: serve: %v\n", err)
		return 1
	}

	srv.Close() // refuse new batches while the listener drains
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sentryd: shutdown: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sentryd: serve: %v\n", err)
		return 1
	}
	snap := srv.Engine().Snapshot()
	fmt.Printf("sentryd: shutdown complete (reported=%d detected=%d clean=%d shed=%d)\n",
		snap.DevicesReported, snap.Detected, snap.Clean, snap.Shed)
	return 0
}
