// Command animbench regenerates the paper's tables and figures from the
// simulation and prints them next to the published values.
//
// Usage:
//
//	animbench -exp all
//	animbench -exp fig7 -seed 42
//	animbench -exp table2
//	animbench -exp all -journal /tmp/animbench-journal
//
// Experiments: fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4,
// stealth, corpus, defense-ipc, defense-notif, all.
//
// With -journal, the long runners (fig6, table2, fig7/fig8, table3,
// degradation) fsync every finished trial to a per-experiment journal in
// the given directory. A run killed at any instant — SIGKILL included —
// rerun with the same flags resumes from the journal and prints a report
// byte-identical to an uninterrupted run; a completed experiment deletes
// its journal.
//
// Exit status: 0 on success, 1 on error, 2 on interrupt or usage error,
// and 3 when `-exp all` completes but some trials were skipped (the report
// footer shows the count).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/appstore"
	"repro/internal/experiment"
	"repro/internal/faults"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// runConfig carries the flag values into the experiment dispatch.
type runConfig struct {
	seed         int64
	model        string
	trials       int
	corpusN      int
	faultProfile string
	journalDir   string
}

func run(args []string) int {
	fs := flag.NewFlagSet("animbench", flag.ContinueOnError)
	var (
		exp          = fs.String("exp", "all", "experiment to run (fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4, stealth, corpus, defense-ipc, defense-notif, degradation, ablations, all)")
		seed         = fs.Int64("seed", 42, "simulation seed")
		model        = fs.String("model", "mi8", "device model for single-device experiments (fig6, load)")
		trials       = fs.Int("trials", 10, "passwords per participant for table3 (paper: 10)")
		corpus       = fs.Int("corpus", appstore.PaperCorpusSize, "synthetic corpus size for the §VI-C2 study")
		faultProfile = fs.String("faultprofile", "chaos", "fault profile for the degradation sweep ("+strings.Join(faults.Names(), ", ")+")")
		journalDir   = fs.String("journal", "", "directory for per-trial journals; a killed run rerun with the same flags resumes to a byte-identical report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := runConfig{
		seed:         *seed,
		model:        *model,
		trials:       *trials,
		corpusN:      *corpus,
		faultProfile: *faultProfile,
		journalDir:   *journalDir,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig2", "fig4", "fig6", "table2", "load", "fig7", "fig8", "table3", "table4", "stealth", "corpus", "defense-ipc", "defense-notif", "defense-toastgap", "drawer", "sensitivity", "ablations"}
	}
	totalSkipped := 0
	for _, name := range names {
		skipped, err := runOne(ctx, strings.TrimSpace(name), cfg)
		totalSkipped += skipped
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "animbench: %s: interrupted\n", name)
				return 2
			}
			fmt.Fprintf(os.Stderr, "animbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}
	if totalSkipped > 0 {
		// The report footer: a run that silently loses trials must say so
		// in the output...
		fmt.Printf("animbench: WARNING: %d trial(s) skipped across experiments\n", totalSkipped)
	}
	// ...and, for the full suite, in the exit status.
	return exitStatus(*exp == "all", totalSkipped)
}

// exitStatus maps a completed run's skipped-trial count to the process
// exit code: a full `-exp all` suite that lost trials exits 3 so CI and
// scripts cannot mistake a degraded run for a clean one.
func exitStatus(expAll bool, skipped int) int {
	if expAll && skipped > 0 {
		return 3
	}
	return 0
}

// openJournal opens the per-experiment trial journal under cfg.journalDir,
// or returns nil (journaling disabled) when no directory was given. params
// must capture every flag that changes the experiment's trial identity.
func openJournal(cfg runConfig, exp, params string) (*experiment.Journal, error) {
	if cfg.journalDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.journalDir, 0o755); err != nil {
		return nil, fmt.Errorf("animbench: create journal dir: %w", err)
	}
	return experiment.OpenJournal(filepath.Join(cfg.journalDir, exp+".journal"), exp, cfg.seed, params)
}

func runOne(ctx context.Context, name string, cfg runConfig) (skipped int, err error) {
	seed, model, trials, corpusN, faultProfile := cfg.seed, cfg.model, cfg.trials, cfg.corpusN, cfg.faultProfile
	switch name {
	case "fig2":
		fmt.Print(experiment.RenderFig2())
	case "fig4":
		fmt.Print(experiment.RenderFig4())
	case "fig6":
		j, err := openJournal(cfg, "fig6", "model="+model)
		if err != nil {
			return 0, err
		}
		defer j.Close()
		pts, err := experiment.Fig6Journaled(model, seed, j)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderFig6(model, pts))
		return 0, j.Finish()
	case "devices":
		fmt.Print(experiment.RenderDeviceCatalog())
	case "table2":
		j, err := openJournal(cfg, "table2", "")
		if err != nil {
			return 0, err
		}
		defer j.Close()
		rows, err := experiment.TableIIJournaled(seed, j)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderTableII(rows))
		return 0, j.Finish()
	case "load":
		rows, err := experiment.LoadImpact(model, seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderLoadImpact(model, rows))
	case "fig7", "fig8":
		// Both views share one capture study, and therefore one journal.
		j, err := openJournal(cfg, "capture", "")
		if err != nil {
			return 0, err
		}
		defer j.Close()
		study, err := experiment.RunCaptureStudyJournaled(seed, j)
		if err != nil {
			return 0, err
		}
		if name == "fig7" {
			rows, err := study.Fig7()
			if err != nil {
				return 0, err
			}
			fmt.Print(experiment.RenderFig7(rows))
			fmt.Println()
			modelRows, err := experiment.Fig7Model()
			if err != nil {
				return 0, err
			}
			fmt.Print(experiment.RenderFig7Model(modelRows, rows))
			return 0, j.Finish()
		}
		series, err := study.Fig8()
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderFig8(study.Ds, series))
		return 0, j.Finish()
	case "table3":
		j, err := openJournal(cfg, "table3", fmt.Sprintf("trials=%d", trials))
		if err != nil {
			return 0, err
		}
		defer j.Close()
		rows, err := experiment.TableIIIJournaled(seed, trials, j)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderTableIII(rows))
		for _, r := range rows {
			skipped += r.Skipped
		}
		return skipped, j.Finish()
	case "table4":
		rows, err := experiment.TableIV(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderTableIV(rows))
	case "stealth":
		rep, err := experiment.Stealthiness(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderStealth(rep))
	case "corpus":
		rep, err := experiment.CorpusStudy(seed, corpusN)
		if err != nil {
			return 0, err
		}
		fmt.Println("§VI-C2 — app-market prevalence study")
		fmt.Println(rep)
	case "defense-ipc":
		rep, err := experiment.DefenseIPC(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderDefenseIPC(rep))
	case "defense-notif":
		rep, err := experiment.DefenseNotif(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderDefenseNotif(rep))
	case "degradation":
		j, err := openJournal(cfg, "degradation", "profile="+faultProfile)
		if err != nil {
			return 0, err
		}
		defer j.Close()
		rep, derr := experiment.DegradationJournaled(ctx, seed, faultProfile, j)
		if rep != nil {
			for _, pt := range rep.Points {
				skipped += pt.SkippedTrials
			}
		}
		if derr != nil {
			if rep != nil && len(rep.Points) > 0 {
				fmt.Print(experiment.RenderDegradation(rep))
			}
			return skipped, derr
		}
		fmt.Print(experiment.RenderDegradation(rep))
		return skipped, j.Finish()
	case "defense-toastgap":
		rep, err := experiment.DefenseToastGap(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderDefenseToastGap(rep))
	case "drawer":
		rep, err := experiment.DrawerCheck(model, seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderDrawerCheck(rep))
	case "sensitivity":
		rows, err := experiment.ScatterSensitivity(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderScatterSensitivity(rows))
	case "ablations":
		rep, err := experiment.Ablations(seed)
		if err != nil {
			return 0, err
		}
		fmt.Print(experiment.RenderAblations(rep))
	default:
		return 0, fmt.Errorf("unknown experiment %q", name)
	}
	return 0, nil
}
