// Command animbench regenerates the paper's tables and figures from the
// simulation and prints them next to the published values.
//
// Usage:
//
//	animbench -exp all
//	animbench -exp fig7 -seed 42
//	animbench -exp table2
//
// Experiments: fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4,
// stealth, corpus, defense-ipc, defense-notif, all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/appstore"
	"repro/internal/experiment"
	"repro/internal/faults"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp          = flag.String("exp", "all", "experiment to run (fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4, stealth, corpus, defense-ipc, defense-notif, degradation, ablations, all)")
		seed         = flag.Int64("seed", 42, "simulation seed")
		model        = flag.String("model", "mi8", "device model for single-device experiments (fig6, load)")
		trials       = flag.Int("trials", 10, "passwords per participant for table3 (paper: 10)")
		corpus       = flag.Int("corpus", appstore.PaperCorpusSize, "synthetic corpus size for the §VI-C2 study")
		faultProfile = flag.String("faultprofile", "chaos", "fault profile for the degradation sweep ("+strings.Join(faults.Names(), ", ")+")")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig2", "fig4", "fig6", "table2", "load", "fig7", "fig8", "table3", "table4", "stealth", "corpus", "defense-ipc", "defense-notif", "defense-toastgap", "drawer", "sensitivity", "ablations"}
	}
	for _, name := range names {
		if err := runOne(ctx, strings.TrimSpace(name), *seed, *model, *trials, *corpus, *faultProfile); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "animbench: %s: interrupted\n", name)
				return 2
			}
			fmt.Fprintf(os.Stderr, "animbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

func runOne(ctx context.Context, name string, seed int64, model string, trials, corpusN int, faultProfile string) error {
	switch name {
	case "fig2":
		fmt.Print(experiment.RenderFig2())
	case "fig4":
		fmt.Print(experiment.RenderFig4())
	case "fig6":
		pts, err := experiment.Fig6(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFig6(model, pts))
	case "devices":
		fmt.Print(experiment.RenderDeviceCatalog())
	case "table2":
		rows, err := experiment.TableII(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableII(rows))
	case "load":
		rows, err := experiment.LoadImpact(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderLoadImpact(model, rows))
	case "fig7", "fig8":
		study, err := experiment.RunCaptureStudy(seed)
		if err != nil {
			return err
		}
		if name == "fig7" {
			rows, err := study.Fig7()
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFig7(rows))
			fmt.Println()
			modelRows, err := experiment.Fig7Model()
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFig7Model(modelRows, rows))
			return nil
		}
		series, err := study.Fig8()
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFig8(study.Ds, series))
	case "table3":
		rows, err := experiment.TableIII(seed, trials)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableIII(rows))
	case "table4":
		rows, err := experiment.TableIV(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableIV(rows))
	case "stealth":
		rep, err := experiment.Stealthiness(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderStealth(rep))
	case "corpus":
		rep, err := experiment.CorpusStudy(seed, corpusN)
		if err != nil {
			return err
		}
		fmt.Println("§VI-C2 — app-market prevalence study")
		fmt.Println(rep)
	case "defense-ipc":
		rep, err := experiment.DefenseIPC(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseIPC(rep))
	case "defense-notif":
		rep, err := experiment.DefenseNotif(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseNotif(rep))
	case "degradation":
		rep, err := experiment.Degradation(ctx, seed, faultProfile)
		if err != nil {
			if rep != nil && len(rep.Points) > 0 {
				fmt.Print(experiment.RenderDegradation(rep))
			}
			return err
		}
		fmt.Print(experiment.RenderDegradation(rep))
	case "defense-toastgap":
		rep, err := experiment.DefenseToastGap(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseToastGap(rep))
	case "drawer":
		rep, err := experiment.DrawerCheck(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDrawerCheck(rep))
	case "sensitivity":
		rows, err := experiment.ScatterSensitivity(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderScatterSensitivity(rows))
	case "ablations":
		rep, err := experiment.Ablations(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblations(rep))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
