// Command animbench regenerates the paper's tables and figures from the
// simulation and prints them next to the published values.
//
// Usage:
//
//	animbench -exp all
//	animbench -exp fig7 -seed 42
//	animbench -exp table2 -workers 4
//	animbench -exp all -journal /tmp/animbench-journal
//
// Every experiment is dispatched through the experiment registry and runs
// on the unified driver: -workers N executes independent trials on a
// bounded worker pool, and the report is byte-identical to -workers 1 for
// every experiment and worker count.
//
// With -journal, every finished trial is fsynced to a per-experiment
// journal in the given directory. A run killed at any instant — SIGKILL
// included — rerun with the same flags resumes from the journal and prints
// a report byte-identical to an uninterrupted run; a completed experiment
// deletes its journal. Journals key trials by a content hash of their
// inputs, so out-of-order commits from the worker pool resume correctly.
//
// Exit status: 0 on success, 1 on error, 2 on interrupt or usage error,
// and 3 when `-exp all` completes but some trials were skipped (the report
// footer shows the count).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/appstore"
	"repro/internal/experiment"
	"repro/internal/faults"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// runConfig carries the flag values into the experiment dispatch.
type runConfig struct {
	seed         int64
	model        string
	trials       int
	corpusN      int
	faultProfile string
	fleetSize    int
	fleetSeed    int64
	journalDir   string
	workers      int
}

func run(args []string) int {
	fs := flag.NewFlagSet("animbench", flag.ContinueOnError)
	var (
		exp          = fs.String("exp", "all", "experiment to run ("+strings.Join(experiment.Names(), ", ")+", all)")
		seed         = fs.Int64("seed", 42, "simulation seed")
		model        = fs.String("model", "mi8", "device model for single-device experiments (fig6, load)")
		trials       = fs.Int("trials", 10, "passwords per participant for table3 (paper: 10)")
		corpus       = fs.Int("corpus", appstore.PaperCorpusSize, "synthetic corpus size for the §VI-C2 study")
		faultProfile = fs.String("faultprofile", "chaos", "fault profile for the degradation sweep ("+strings.Join(faults.Names(), ", ")+")")
		fleetSize    = fs.Int("fleet-size", 1000, "generated device population size for the fleet sweep")
		fleetSeed    = fs.Int64("fleet-seed", 42, "generation seed for the fleet sweep's device population")
		journalDir   = fs.String("journal", "", "directory for per-trial journals; a killed run rerun with the same flags resumes to a byte-identical report")
		workers      = fs.Int("workers", 1, "trial worker pool size; any value renders byte-identical reports")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := runConfig{
		seed:         *seed,
		model:        *model,
		trials:       *trials,
		corpusN:      *corpus,
		faultProfile: *faultProfile,
		fleetSize:    *fleetSize,
		fleetSeed:    *fleetSeed,
		journalDir:   *journalDir,
		workers:      *workers,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = experiment.SuiteNames()
	}
	totalSkipped := 0
	for _, name := range names {
		skipped, err := runOne(ctx, strings.TrimSpace(name), cfg)
		totalSkipped += skipped
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "animbench: %s: interrupted\n", name)
				return 2
			}
			fmt.Fprintf(os.Stderr, "animbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}
	if totalSkipped > 0 {
		// The report footer: a run that silently loses trials must say so
		// in the output...
		fmt.Printf("animbench: WARNING: %d trial(s) skipped across experiments\n", totalSkipped)
	}
	// ...and, for the full suite, in the exit status.
	return exitStatus(*exp == "all", totalSkipped)
}

// exitStatus maps a completed run's skipped-trial count to the process
// exit code: a full `-exp all` suite that lost trials exits 3 so CI and
// scripts cannot mistake a degraded run for a clean one.
func exitStatus(expAll bool, skipped int) int {
	if expAll && skipped > 0 {
		return 3
	}
	return 0
}

// openJournal opens the per-experiment trial journal under cfg.journalDir,
// or returns nil (journaling disabled) when no directory was given. params
// must capture every flag that changes the experiment's trial identity.
func openJournal(cfg runConfig, exp, params string) (*experiment.Journal, error) {
	if cfg.journalDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.journalDir, 0o755); err != nil {
		return nil, fmt.Errorf("animbench: create journal dir: %w", err)
	}
	return experiment.OpenJournal(filepath.Join(cfg.journalDir, exp+".journal"), exp, cfg.seed, params)
}

// runOne builds the named experiment from the registry and hands it to the
// unified driver: the one code path covers journaling, resume and the
// worker pool for every experiment.
func runOne(ctx context.Context, name string, cfg runConfig) (skipped int, err error) {
	exp, err := experiment.New(name, experiment.Config{
		Model:        cfg.model,
		Trials:       cfg.trials,
		CorpusN:      cfg.corpusN,
		FaultProfile: cfg.faultProfile,
		FleetSize:    cfg.fleetSize,
		FleetSeed:    cfg.fleetSeed,
	})
	if err != nil {
		return 0, err
	}
	j, err := openJournal(cfg, experiment.JournalNameOf(exp), exp.Params())
	if err != nil {
		return 0, err
	}
	defer j.Close()
	out, err := experiment.Run(exp, experiment.RunOpts{
		Ctx:     ctx,
		Seed:    cfg.seed,
		Workers: cfg.workers,
		Journal: j,
	})
	if err != nil {
		return 0, err
	}
	fmt.Print(out.Text)
	return out.Skipped, j.Finish()
}
