// Command animbench regenerates the paper's tables and figures from the
// simulation and prints them next to the published values.
//
// Usage:
//
//	animbench -exp all
//	animbench -exp fig7 -seed 42
//	animbench -exp table2
//
// Experiments: fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4,
// stealth, corpus, defense-ipc, defense-notif, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/appstore"
	"repro/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp    = flag.String("exp", "all", "experiment to run (fig2, fig4, fig6, table2, load, fig7, fig8, table3, table4, stealth, corpus, defense-ipc, defense-notif, ablations, all)")
		seed   = flag.Int64("seed", 42, "simulation seed")
		model  = flag.String("model", "mi8", "device model for single-device experiments (fig6, load)")
		trials = flag.Int("trials", 10, "passwords per participant for table3 (paper: 10)")
		corpus = flag.Int("corpus", appstore.PaperCorpusSize, "synthetic corpus size for the §VI-C2 study")
	)
	flag.Parse()

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig2", "fig4", "fig6", "table2", "load", "fig7", "fig8", "table3", "table4", "stealth", "corpus", "defense-ipc", "defense-notif", "defense-toastgap", "drawer", "sensitivity", "ablations"}
	}
	for _, name := range names {
		if err := runOne(strings.TrimSpace(name), *seed, *model, *trials, *corpus); err != nil {
			fmt.Fprintf(os.Stderr, "animbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

func runOne(name string, seed int64, model string, trials, corpusN int) error {
	switch name {
	case "fig2":
		fmt.Print(experiment.RenderFig2())
	case "fig4":
		fmt.Print(experiment.RenderFig4())
	case "fig6":
		pts, err := experiment.Fig6(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFig6(model, pts))
	case "devices":
		fmt.Print(experiment.RenderDeviceCatalog())
	case "table2":
		rows, err := experiment.TableII(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableII(rows))
	case "load":
		rows, err := experiment.LoadImpact(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderLoadImpact(model, rows))
	case "fig7", "fig8":
		study, err := experiment.RunCaptureStudy(seed)
		if err != nil {
			return err
		}
		if name == "fig7" {
			rows, err := study.Fig7()
			if err != nil {
				return err
			}
			fmt.Print(experiment.RenderFig7(rows))
			fmt.Println()
			fmt.Print(experiment.RenderFig7Model(experiment.Fig7Model(), rows))
			return nil
		}
		series, err := study.Fig8()
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderFig8(study.Ds, series))
	case "table3":
		rows, err := experiment.TableIII(seed, trials)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableIII(rows))
	case "table4":
		rows, err := experiment.TableIV(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderTableIV(rows))
	case "stealth":
		rep, err := experiment.Stealthiness(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderStealth(rep))
	case "corpus":
		rep, err := experiment.CorpusStudy(seed, corpusN)
		if err != nil {
			return err
		}
		fmt.Println("§VI-C2 — app-market prevalence study")
		fmt.Println(rep)
	case "defense-ipc":
		rep, err := experiment.DefenseIPC(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseIPC(rep))
	case "defense-notif":
		rep, err := experiment.DefenseNotif(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseNotif(rep))
	case "defense-toastgap":
		rep, err := experiment.DefenseToastGap(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDefenseToastGap(rep))
	case "drawer":
		rep, err := experiment.DrawerCheck(model, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderDrawerCheck(rep))
	case "sensitivity":
		rows, err := experiment.ScatterSensitivity(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderScatterSensitivity(rows))
	case "ablations":
		rep, err := experiment.Ablations(seed)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderAblations(rep))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
