package main

import (
	"context"
	"testing"
)

// TestRunOneFastExperiments exercises the dispatch wiring for every cheap
// experiment name; the heavy studies have their own tests in
// internal/experiment.
func TestRunOneFastExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig4", "devices", "sensitivity", "defense-notif", "defense-toastgap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := runOne(context.Background(), name, 1, "mi8", 1, 1000, "chaos"); err != nil {
				t.Fatalf("runOne(%s): %v", name, err)
			}
		})
	}
}

func TestRunOneCorpusSmall(t *testing.T) {
	if err := runOne(context.Background(), "corpus", 1, "mi8", 1, 5000, "chaos"); err != nil {
		t.Fatalf("runOne(corpus): %v", err)
	}
}

func TestRunOneDegradation(t *testing.T) {
	if err := runOne(context.Background(), "degradation", 1, "mi8", 1, 1000, "binder"); err != nil {
		t.Fatalf("runOne(degradation): %v", err)
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne(context.Background(), "fig99", 1, "mi8", 1, 1000, "chaos"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneBadModel(t *testing.T) {
	if err := runOne(context.Background(), "fig6", 1, "not-a-phone", 1, 1000, "chaos"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunOneBadFaultProfile(t *testing.T) {
	if err := runOne(context.Background(), "degradation", 1, "mi8", 1, 1000, "not-a-profile"); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}
