package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// helperEnv carries the animbench arguments into a re-exec'ed copy of the
// test binary, which then behaves exactly like the real CLI (fsynced
// journals, real exit status) so tests can SIGKILL it mid-run.
const helperEnv = "ANIMBENCH_HELPER_ARGS"

func TestMain(m *testing.M) {
	if v, ok := os.LookupEnv(helperEnv); ok {
		var args []string
		if v != "" {
			args = strings.Split(v, "\x1f")
		}
		os.Exit(run(args))
	}
	os.Exit(m.Run())
}

func cfgWith(seed int64, model string, trials, corpusN int, faultProfile string) runConfig {
	return runConfig{seed: seed, model: model, trials: trials, corpusN: corpusN, faultProfile: faultProfile, workers: 1}
}

// TestRunOneFastExperiments exercises the dispatch wiring for every cheap
// experiment name; the heavy studies have their own tests in
// internal/experiment.
func TestRunOneFastExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig4", "devices", "sensitivity", "defense-notif", "defense-toastgap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if _, err := runOne(context.Background(), name, cfgWith(1, "mi8", 1, 1000, "chaos")); err != nil {
				t.Fatalf("runOne(%s): %v", name, err)
			}
		})
	}
}

func TestRunOneCorpusSmall(t *testing.T) {
	if _, err := runOne(context.Background(), "corpus", cfgWith(1, "mi8", 1, 5000, "chaos")); err != nil {
		t.Fatalf("runOne(corpus): %v", err)
	}
}

func TestRunOneDegradation(t *testing.T) {
	if _, err := runOne(context.Background(), "degradation", cfgWith(1, "mi8", 1, 1000, "binder")); err != nil {
		t.Fatalf("runOne(degradation): %v", err)
	}
}

// TestRunOneWorkersParity: the CLI contract behind -workers — the pooled
// dispatch must not change an experiment's skip count or fail where the
// sequential one succeeds.
func TestRunOneWorkersParity(t *testing.T) {
	cfg := cfgWith(1, "mi8", 1, 1000, "binder")
	cfg.workers = 4
	for _, name := range []string{"fig6", "load", "degradation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if _, err := runOne(context.Background(), name, cfg); err != nil {
				t.Fatalf("runOne(%s, workers=4): %v", name, err)
			}
		})
	}
}

func TestRunOneUnknown(t *testing.T) {
	if _, err := runOne(context.Background(), "fig99", cfgWith(1, "mi8", 1, 1000, "chaos")); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneBadModel(t *testing.T) {
	if _, err := runOne(context.Background(), "fig6", cfgWith(1, "not-a-phone", 1, 1000, "chaos")); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRunOneBadFaultProfile(t *testing.T) {
	if _, err := runOne(context.Background(), "degradation", cfgWith(1, "mi8", 1, 1000, "not-a-profile")); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}

func TestExitStatus(t *testing.T) {
	cases := []struct {
		expAll  bool
		skipped int
		want    int
	}{
		{false, 0, 0},
		{false, 5, 0}, // single experiments report skips in the footer only
		{true, 0, 0},
		{true, 1, 3},
		{true, 100, 3},
	}
	for _, c := range cases {
		if got := exitStatus(c.expAll, c.skipped); got != c.want {
			t.Errorf("exitStatus(%v, %d) = %d, want %d", c.expAll, c.skipped, got, c.want)
		}
	}
}

func TestRunUsageError(t *testing.T) {
	if got := run([]string{"-no-such-flag"}); got != 2 {
		t.Fatalf("run with bad flag = %d, want 2", got)
	}
}

// helperCmd builds an exec.Cmd that re-runs this test binary as the
// animbench CLI with the given arguments.
func helperCmd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
	return cmd
}

// TestJournalResumeAfterSIGKILL is the headline crash-safety check: a
// journaled table3 run is SIGKILLed mid-flight, then rerun with the same
// journal directory, and the resumed run's stdout must be byte-identical
// to an uninterrupted run's. The workers=4 variant kills the run while the
// pool is committing trials out of order, proving the content-addressed
// journal resumes correctly from an out-of-order prefix.
func TestJournalResumeAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	for _, workers := range []string{"1", "4"} {
		workers := workers
		t.Run("workers="+workers, func(t *testing.T) {
			args := []string{"-exp", "table3", "-seed", "9", "-trials", "3", "-workers", workers}

			// Uninterrupted baseline, no journal.
			base := helperCmd(t, args...)
			var baseOut bytes.Buffer
			base.Stdout = &baseOut
			base.Stderr = os.Stderr
			if err := base.Run(); err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			// Journaled run, killed mid-flight with SIGKILL.
			dir := t.TempDir()
			jargs := append(args, "-journal", dir)
			victim := helperCmd(t, jargs...)
			victim.Stdout = new(bytes.Buffer)
			if err := victim.Start(); err != nil {
				t.Fatalf("start victim: %v", err)
			}
			time.Sleep(250 * time.Millisecond)
			_ = victim.Process.Kill()
			_ = victim.Wait() // reap; exit error expected

			// The journal should have caught some finished trials before the
			// kill. If the victim somehow completed, the journal was deleted
			// and the rerun below degenerates to a fresh run — still a valid
			// comparison, but log it so a chronically-too-fast victim is
			// noticed.
			if _, err := os.Stat(filepath.Join(dir, "table3.journal")); err != nil {
				t.Logf("no journal left after kill (victim finished early?): %v", err)
			}

			// Resume with the same flags and journal directory.
			resumed := helperCmd(t, jargs...)
			var resumedOut bytes.Buffer
			resumed.Stdout = &resumedOut
			resumed.Stderr = os.Stderr
			if err := resumed.Run(); err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			if !bytes.Equal(baseOut.Bytes(), resumedOut.Bytes()) {
				t.Errorf("resumed output differs from uninterrupted run\nbaseline:\n%s\nresumed:\n%s",
					baseOut.String(), resumedOut.String())
			}
			// A finished experiment must clean up its journal.
			if _, err := os.Stat(filepath.Join(dir, "table3.journal")); !os.IsNotExist(err) {
				t.Errorf("journal not deleted after successful resume (stat err: %v)", err)
			}
		})
	}
}

// TestJournalSeedMismatchRejected: rerunning with a different seed against
// an existing journal must fail loudly instead of mixing trial streams.
func TestJournalSeedMismatchRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	dir := t.TempDir()

	first := helperCmd(t, "-exp", "table3", "-trials", "3", "-seed", "3", "-journal", dir)
	first.Stdout = new(bytes.Buffer)
	if err := first.Start(); err != nil {
		t.Fatalf("start first: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	_ = first.Process.Kill()
	_ = first.Wait()
	if _, err := os.Stat(filepath.Join(dir, "table3.journal")); err != nil {
		t.Skipf("first run left no journal to conflict with: %v", err)
	}

	second := helperCmd(t, "-exp", "table3", "-trials", "3", "-seed", "4", "-journal", dir)
	var errOut bytes.Buffer
	second.Stdout = new(bytes.Buffer)
	second.Stderr = &errOut
	err := second.Run()
	var exitErr *exec.ExitError
	if err == nil {
		t.Fatal("seed mismatch against existing journal accepted")
	} else if !errors.As(err, &exitErr) {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(errOut.String(), "journal") {
		t.Errorf("mismatch error does not mention the journal: %q", errOut.String())
	}
}
