// Command corpusscan runs the Section VI-C2 app-market prevalence study on
// a synthetic corpus: it generates APK stand-ins with calibrated feature
// rates and scans them with the aapt-style manifest pass and the
// FlowDroid-style method-reference pass.
//
// Usage:
//
//	corpusscan             # full paper-scale corpus (890,855 apps)
//	corpusscan -n 100000   # smaller corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/appstore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n    = flag.Int("n", appstore.PaperCorpusSize, "corpus size")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	start := time.Now()
	rep, err := appstore.Study(*seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusscan: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}
