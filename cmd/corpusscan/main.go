// Command corpusscan runs the Section VI-C2 app-market prevalence study on
// a synthetic corpus: it generates APK stand-ins with calibrated feature
// rates and scans each with both the grep-style method-reference baseline
// and the FlowDroid-style call-graph reachability analysis, reporting the
// headline counts plus per-detector precision/recall against ground truth.
//
// The scan is chunked so results are byte-identical for a given seed
// regardless of worker count. With -checkpoint the finished chunks are
// journaled to disk: a run killed by SIGINT (or the machine) resumes from
// the journal on the next invocation and still produces the identical
// report. The static pass runs at a selectable precision tier (-tier
// 0..2; see internal/staticanalysis); checkpoints record the tier, so a
// journal from one tier cannot resume a study at another.
//
// Usage:
//
//	corpusscan                       # full paper-scale corpus (890,855 apps)
//	corpusscan -n 100000 -workers 4  # smaller corpus, 4 scan workers
//	corpusscan -progress             # report progress every 100k apps
//	corpusscan -checkpoint scan.ckpt # crash-safe resumable run
//	corpusscan -tier 2               # interprocedural constant propagation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/appstore"
	"repro/internal/staticanalysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", appstore.PaperCorpusSize, "corpus size")
		seed       = flag.Int64("seed", 1, "generator seed")
		workers    = flag.Int("workers", 0, "scan workers (0 = GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "print progress while scanning")
		checkpoint = flag.String("checkpoint", "", "journal finished chunks to this file and resume from it")
		tierArg    = flag.String("tier", "0", "static analysis precision tier (0..2)")
	)
	flag.Parse()
	tier, err := staticanalysis.ParseTier(*tierArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusscan: %v\n", err)
		return 2
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	opts := appstore.StudyOptions{Workers: *workers, Ctx: ctx, CheckpointPath: *checkpoint, Tier: tier}
	if *progress {
		const step = 100_000
		next := step
		opts.Progress = func(done, total int) {
			for done >= next || done == total {
				fmt.Fprintf(os.Stderr, "corpusscan: %d/%d apps (%.0f%%) in %v\n",
					done, total, 100*float64(done)/float64(total),
					time.Since(start).Round(time.Second))
				if done == total {
					return
				}
				next += step
			}
		}
	}
	rep, err := appstore.StudyWith(*seed, *n, opts)
	if err != nil {
		var ie *appstore.InterruptedError
		if errors.As(err, &ie) {
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "corpusscan: interrupted after %d/%d chunks; rerun with -checkpoint %s to resume from chunk %d\n",
					ie.ChunksDone, ie.ChunksTotal, *checkpoint, ie.NextChunk)
			} else {
				fmt.Fprintf(os.Stderr, "corpusscan: interrupted after %d/%d chunks; progress was not journaled (use -checkpoint to make runs resumable)\n",
					ie.ChunksDone, ie.ChunksTotal)
			}
			return 2
		}
		fmt.Fprintf(os.Stderr, "corpusscan: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	fmt.Printf("workers: %d, elapsed: %v\n", *workers, time.Since(start).Round(time.Millisecond))
	return 0
}
