// Command defensecheck evaluates the Section VII defenses: the IPC
// (Binder) based detector, the enhanced-notification delayed-removal
// patch, and the static scan-before-install vetting pass built on the
// call-graph capability detectors.
//
// Usage:
//
//	defensecheck
//	defensecheck -seed 7 -vet-n 500 -vet-show 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 42, "simulation seed")
	vetN := flag.Int("vet-n", 300, "market slice size for the static vetting pass")
	vetShow := flag.Int("vet-show", 3, "max denial verdicts to print with full evidence traces")
	flag.Parse()

	ipc, err := experiment.DefenseIPC(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecheck: ipc: %v\n", err)
		return 1
	}
	fmt.Print(experiment.RenderDefenseIPC(ipc))
	fmt.Println()
	notif, err := experiment.DefenseNotif(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecheck: notif: %v\n", err)
		return 1
	}
	fmt.Print(experiment.RenderDefenseNotif(notif))
	fmt.Println()
	vet, err := experiment.DefenseVet(*seed, *vetN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecheck: vet: %v\n", err)
		return 1
	}
	fmt.Print(experiment.RenderDefenseVet(vet, *vetShow))
	return 0
}
