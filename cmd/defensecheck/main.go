// Command defensecheck evaluates both Section VII defenses: the IPC
// (Binder) based detector and the enhanced-notification delayed-removal
// patch.
//
// Usage:
//
//	defensecheck
//	defensecheck -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	ipc, err := experiment.DefenseIPC(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecheck: ipc: %v\n", err)
		return 1
	}
	fmt.Print(experiment.RenderDefenseIPC(ipc))
	fmt.Println()
	notif, err := experiment.DefenseNotif(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecheck: notif: %v\n", err)
		return 1
	}
	fmt.Print(experiment.RenderDefenseNotif(notif))
	return 0
}
