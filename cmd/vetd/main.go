// Command vetd serves the scan-before-install vetting service
// (internal/vetd) over HTTP: POST /v1/vet, POST /v1/vet/batch,
// GET /healthz, GET /readyz, GET /metrics, GET /stats.
//
// With -store DIR the node keeps a crash-safe persistent verdict store
// (internal/vetstore) at DIR/verdicts.store: every computed verdict is
// fsynced before it retires, and a SIGKILLed node recovers the full
// acknowledged keyspace on restart without re-analyzing. -compact
// rewrites the store without duplicate records and exits.
//
// It prints "vetd: listening on ADDR" once the listener is bound (with
// -addr :0 the printed address carries the ephemeral port, which is how
// the verify.sh smoke stage finds it) and shuts down cleanly on SIGINT
// or SIGTERM: stop accepting, drain in-flight requests, stop the
// analysis pool, exit 0.
//
// The static pass runs at a selectable precision tier (-tier 0..2; see
// internal/staticanalysis). The tier is part of every verdict cache key,
// so restarting the daemon at a different tier never serves a verdict
// computed at the old one.
//
// Usage:
//
//	vetd -addr :8474 -cache 8192 -workers 8 -deadline 2s -tier 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/staticanalysis"
	"repro/internal/vetd"
	"repro/internal/vetstore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8474", "listen address (host:port; :0 picks an ephemeral port)")
		cacheCap = flag.String("cache", "8192", "verdict cache capacity in entries (\"off\" disables caching)")
		shards   = flag.Int("shards", 16, "verdict cache shard count")
		queue    = flag.Int("queue", 256, "analysis admission queue depth (full queue sheds with 429)")
		workers  = flag.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
		deadline = flag.Duration("deadline", 2*time.Second, "per-request analysis deadline")
		maxBatch = flag.Int("max-batch", 256, "maximum apps per batch request")
		logDest  = flag.String("log", "", "structured request log destination (\"-\" for stderr, path for a file, empty to disable)")
		tierArg  = flag.String("tier", "0", "static analysis precision tier (0..2)")
		storeDir = flag.String("store", "", "persistent verdict store directory (empty disables persistence)")
		compact  = flag.Bool("compact", false, "compact the -store file and exit (offline maintenance; do not run against a live node)")
	)
	flag.Parse()
	tier, err := staticanalysis.ParseTier(*tierArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetd: %v\n", err)
		return 2
	}

	var store *vetstore.Store
	if *storeDir != "" {
		path := filepath.Join(*storeDir, "verdicts.store")
		store, err = vetstore.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vetd: open store: %v\n", err)
			return 1
		}
		defer store.Close()
		st := store.Stats()
		fmt.Printf("vetd: store %s recovered %d verdicts (torn tail: %v)\n", path, st.Recovered, st.TornTail)
		if *compact {
			if err := store.Compact(); err != nil {
				fmt.Fprintf(os.Stderr, "vetd: compact: %v\n", err)
				return 1
			}
			fmt.Printf("vetd: store compacted to %d records\n", store.Len())
			return 0
		}
	} else if *compact {
		fmt.Fprintln(os.Stderr, "vetd: -compact requires -store")
		return 2
	}

	cfg := vetd.Config{
		CacheShards: *shards,
		QueueDepth:  *queue,
		Workers:     *workers,
		Deadline:    *deadline,
		MaxBatch:    *maxBatch,
		Tier:        tier,
		Store:       store,
	}
	if *cacheCap == "off" {
		cfg.CacheCapacity = -1
	} else if _, err := fmt.Sscanf(*cacheCap, "%d", &cfg.CacheCapacity); err != nil {
		fmt.Fprintf(os.Stderr, "vetd: bad -cache %q: %v\n", *cacheCap, err)
		return 2
	}
	switch *logDest {
	case "":
	case "-":
		cfg.LogWriter = os.Stderr
	default:
		f, err := os.Create(*logDest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vetd: open log: %v\n", err)
			return 2
		}
		defer f.Close()
		cfg.LogWriter = f
	}

	srv := vetd.New(cfg)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetd: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("vetd: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Println("vetd: signal received, shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "vetd: serve: %v\n", err)
		return 1
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "vetd: shutdown: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "vetd: serve: %v\n", err)
		return 1
	}
	srv.Close()
	stats := srv.Metrics().Snapshot()
	fmt.Printf("vetd: shutdown complete (requests=%d hits=%d misses=%d sheds=%d analyses=%d)\n",
		stats.Requests, stats.Hits, stats.Misses, stats.Sheds, stats.Analyses)
	return 0
}
