package main

// Ring mode: fleetload as the chaos harness for the multi-node sentry.
// With -ring N it spawns N sentryd peers (each with its own crash-safe
// detection journal) and one sentryrouter on ephemeral ports, replays
// the seeded fleet against the router, and — with -chaos — SIGKILLs a
// seeded sequence of peers mid-run and restarts each on the same
// address and store directory. After the replay it proves the plane's
// four distributed properties: merged detections match a single-node
// reference engine, the router's exclusive batch accounting is exact,
// /v1/flagged answers survive a SIGKILL-restart of every peer
// byte-identically, and a -swap rule change stamps post-swap
// detections with the new config version. Everything shuts down on
// SIGINT at the end; an unclean exit from any process fails the run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/sentring"
	"repro/internal/sentry"
	"repro/internal/simrand"
)

const (
	peerListenPrefix   = "sentryd: listening on "
	routerListenPrefix = "sentryrouter: listening on "
	probeDevice        = "probe-swap"
)

// proc is one spawned ring process (a sentryd peer or the router).
type proc struct {
	label string
	bin   string
	args  []string

	mu   sync.Mutex
	cmd  *exec.Cmd
	addr string
	done chan error
}

// spawn starts the process and waits for its "<label>: listening on
// ADDR" line, mirroring how scripts/verify.sh finds ephemeral ports.
// All process output is forwarded to our stdout, prefixed.
func spawn(label, bin string, args []string, listenPrefix string) (*proc, error) {
	p := &proc{label: label, bin: bin, args: args}
	if err := p.start(listenPrefix); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *proc) start(listenPrefix string) error {
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, listenPrefix); ok {
				select {
				case addrc <- strings.Fields(a)[0]:
				default:
				}
			}
			fmt.Printf("  [%s] %s\n", p.label, line)
		}
		done <- cmd.Wait()
	}()
	select {
	case addr := <-addrc:
		p.mu.Lock()
		p.cmd, p.addr, p.done = cmd, addr, done
		p.mu.Unlock()
		return nil
	case err := <-done:
		return fmt.Errorf("%s exited before listening: %v", p.label, err)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("%s: no listening line within 10s", p.label)
	}
}

// kill SIGKILLs the process and reaps it.
func (p *proc) kill() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		<-done
	}
}

// restart re-execs the process on its previous concrete address (the
// restart path of a crashed peer: same identity, same store).
func (p *proc) restart(listenPrefix string) error {
	p.mu.Lock()
	args := make([]string, len(p.args))
	copy(args, p.args)
	for i := 0; i < len(args)-1; i++ {
		if args[i] == "-addr" {
			args[i+1] = p.addr
		}
	}
	p.args = args
	p.mu.Unlock()
	return p.start(listenPrefix)
}

// interrupt SIGINTs the process and returns its exit error (nil for a
// clean exit 0).
func (p *proc) interrupt(timeout time.Duration) error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("%s: not running", p.label)
	}
	cmd.Process.Signal(syscall.SIGINT)
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("%s: no clean exit within %v; killed", p.label, timeout)
	}
}

// ringHarness owns the spawned topology.
type ringHarness struct {
	peers  []*proc
	router *proc

	chaosStop chan struct{}
	chaosDone chan struct{}
	kills     int
}

// startRing spawns cfg.ring sentryd peers (each journaling to its own
// store directory) and the router, returning the router's base URL.
func startRing(cfg config) (*ringHarness, string, error) {
	storeRoot := cfg.storeDir
	if storeRoot == "" {
		dir, err := os.MkdirTemp("", "fleetload-ring-")
		if err != nil {
			return nil, "", err
		}
		storeRoot = dir
	}
	h := &ringHarness{}
	for i := 0; i < cfg.ring; i++ {
		dir := filepath.Join(storeRoot, fmt.Sprintf("peer%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			h.stopAll()
			return nil, "", err
		}
		p, err := spawn(fmt.Sprintf("sentryd%d", i), cfg.sentrydBin, []string{
			"-addr", "127.0.0.1:0", "-queue", "256", "-store", dir,
		}, peerListenPrefix)
		if err != nil {
			h.stopAll()
			return nil, "", err
		}
		h.peers = append(h.peers, p)
	}
	peerAddrs := make([]string, len(h.peers))
	for i, p := range h.peers {
		peerAddrs[i] = p.addr
	}
	router, err := spawn("router", cfg.routerBin, []string{
		"-addr", "127.0.0.1:0",
		"-peers", strings.Join(peerAddrs, ","),
		"-replicas", strconv.Itoa(cfg.replicas),
		"-net-faults", cfg.netFaults,
		"-net-seed", strconv.FormatInt(cfg.netSeed, 10),
		"-seed", strconv.FormatInt(cfg.seed, 10),
	}, routerListenPrefix)
	if err != nil {
		h.stopAll()
		return nil, "", err
	}
	h.router = router
	return h, "http://" + router.addr, nil
}

// startChaos begins the seeded kill/restart schedule: every interval
// (jittered) one seeded-chosen peer is SIGKILLed, left down briefly,
// and restarted on the same address and store — for exactly
// cfg.chaosKills cycles.
func (h *ringHarness) startChaos(cfg config) {
	h.chaosStop = make(chan struct{})
	h.chaosDone = make(chan struct{})
	rng := simrand.New(cfg.seed).Derive("fleetload/chaos")
	go func() {
		defer close(h.chaosDone)
		for h.kills < cfg.chaosKills {
			wait := time.Duration(float64(cfg.chaos) * (0.5 + rng.Float64()))
			select {
			case <-h.chaosStop:
				return
			case <-time.After(wait):
			}
			victim := h.peers[rng.Intn(len(h.peers))]
			fmt.Printf("fleetload: chaos: SIGKILL %s (%s)\n", victim.label, victim.addr)
			victim.kill()
			h.kills++
			downFor := time.Duration(float64(cfg.chaos) * 0.25 * (0.5 + rng.Float64()))
			select {
			case <-h.chaosStop:
				// Restart even when stopping, so the final shutdown pass
				// finds every peer alive and can verify clean exits.
				if err := victim.restart(peerListenPrefix); err != nil {
					fmt.Fprintf(os.Stderr, "fleetload: chaos: restart %s: %v\n", victim.label, err)
				}
				return
			case <-time.After(downFor):
			}
			if err := victim.restart(peerListenPrefix); err != nil {
				fmt.Fprintf(os.Stderr, "fleetload: chaos: restart %s: %v\n", victim.label, err)
				return
			}
			fmt.Printf("fleetload: chaos: restarted %s on %s\n", victim.label, victim.addr)
		}
	}()
}

// waitChaos blocks until the scheduled kill/restart cycles finish.
func (h *ringHarness) waitChaos() {
	if h.chaosDone != nil {
		select {
		case <-h.chaosDone:
		case <-time.After(60 * time.Second):
			close(h.chaosStop)
			<-h.chaosDone
		}
	}
}

// restartAllPeers SIGKILLs every peer and restarts each on its address
// and store — the fleet-wide power-cycle behind the byte-stability
// check on /v1/flagged.
func (h *ringHarness) restartAllPeers() error {
	for _, p := range h.peers {
		fmt.Printf("fleetload: power-cycle: SIGKILL %s (%s)\n", p.label, p.addr)
		p.kill()
	}
	for _, p := range h.peers {
		if err := p.restart(peerListenPrefix); err != nil {
			return fmt.Errorf("restart %s: %w", p.label, err)
		}
	}
	return nil
}

// shutdown SIGINTs the router then every peer, requiring clean exits.
func (h *ringHarness) shutdown() error {
	var firstErr error
	if h.router != nil {
		if err := h.router.interrupt(10 * time.Second); err != nil {
			firstErr = fmt.Errorf("router: %w", err)
		}
	}
	for _, p := range h.peers {
		if err := p.interrupt(10 * time.Second); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", p.label, err)
		}
	}
	return firstErr
}

// stopAll is the error-path cleanup: kill everything, ignore outcomes.
func (h *ringHarness) stopAll() {
	if h.router != nil {
		h.router.kill()
	}
	for _, p := range h.peers {
		p.kill()
	}
}

// swapUpdate is the mid-run rule change: detection-equivalent on the
// generated fleet (every planted attacker still clears the tightened
// thresholds; no benign class reaches them), so the single-node
// reference comparison stays exact across the swap.
func swapUpdate() sentry.ConfigUpdate {
	eng, err := sentry.NewEngine(sentry.Config{})
	if err != nil {
		panic(err) // the default config always constructs
	}
	u := eng.ConfigSnapshot()
	u.Version = 0
	u.MinCalls = 10
	u.MinSwaps = 5
	u.NotifFlood = 35
	return u
}

// probeRecords is the post-swap draw-and-destroy stream: its detection
// must carry the swapped config version.
func probeRecords() []sentry.Record {
	var recs []sentry.Record
	for i := 0; i < 12; i++ {
		at := time.Duration(i) * 6 * time.Millisecond
		recs = append(recs,
			sentry.Record{Device: probeDevice, Seq: uint64(2 * i), Method: sentry.MethodAddView, At: at},
			sentry.Record{Device: probeDevice, Seq: uint64(2*i + 1), Method: sentry.MethodRemoveView, At: at + 3*time.Millisecond},
		)
	}
	return recs
}

// runRing drives the full multi-node scenario.
func runRing(cfg config, fl *sentry.Fleet) int {
	h, base, err := startRing(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: ring: %v\n", err)
		return 1
	}
	ok := false
	defer func() {
		if !ok {
			h.stopAll()
		}
	}()
	client := &http.Client{Timeout: 15 * time.Second}

	fmt.Printf("fleetload: replaying %d devices (%d records) through %s (ring %d, replicas %d, chaos %v x%d)\n",
		len(fl.Devices), fl.Records(), base, cfg.ring, cfg.replicas, cfg.chaos, cfg.chaosKills)
	if cfg.chaos > 0 {
		h.startChaos(cfg)
	}
	rs := sentry.ReplayFleetOpts(client, base, fl, sentry.ReplayOptions{
		Clients: cfg.clients, Batch: cfg.batch, Retry429: cfg.retry429, Seed: cfg.seed,
	})
	if cfg.chaos > 0 {
		h.waitChaos()
		fmt.Printf("fleetload: chaos complete: %d kill/restart cycles\n", h.kills)
		if h.kills < cfg.chaosKills {
			fmt.Fprintf(os.Stderr, "fleetload: chaos ran only %d of %d cycles\n", h.kills, cfg.chaosKills)
			return 1
		}
	}
	if rs.Errors > 0 {
		fmt.Fprintf(os.Stderr, "fleetload: %d replay errors (first: %s)\n", rs.Errors, rs.FirstError)
		return 1
	}

	// Mid-run (post-chaos) rule swap: every peer is alive, so the fan-out
	// must reach the full ring synchronously.
	swapU := swapUpdate()
	if cfg.swap {
		if err := postSwap(client, base, cfg.ring, swapU); err != nil {
			fmt.Fprintf(os.Stderr, "fleetload: swap: %v\n", err)
			return 1
		}
		if err := replayProbe(client, base, cfg.batch); err != nil {
			fmt.Fprintf(os.Stderr, "fleetload: probe replay: %v\n", err)
			return 1
		}
		fl.Truth[probeDevice] = sentry.PatternDrawAndDestroy
	}

	snap, err := fetchReport(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: fetch report: %v\n", err)
		return 1
	}
	fmt.Print(sentry.RenderFleetReport(snap, fl, rs))

	// Single-node reference: the same streams through one bare engine
	// must flag exactly the same devices with the same patterns —
	// detection is a pure function of the device stream, and neither
	// sharding, replication, crashes nor the rule swap may change it.
	refSnap, err := referenceSnapshot(cfg, fl, swapU)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: reference engine: %v\n", err)
		return 1
	}
	if n := detectionMismatches(snap, refSnap); n > 0 {
		fmt.Fprintf(os.Stderr, "fleetload: %d detection mismatches vs single-node reference\n", n)
		return 1
	}
	fmt.Printf("fleetload: detections match the single-node reference (%d devices flagged)\n", snap.Detected)

	// Router-side exclusive accounting.
	if err := checkRouterAccounting(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: %v\n", err)
		return 1
	}

	// Config-version stamping: post-swap detections carry the swapped
	// version; pre-swap ones keep the version that produced them.
	printVersionHistogram(snap)
	if cfg.swap {
		if err := checkProbeVersion(snap, swapU); err != nil {
			fmt.Fprintf(os.Stderr, "fleetload: %v\n", err)
			return 1
		}
	}

	// Flagged answers must survive a fleet-wide power cycle
	// byte-identically: every peer is SIGKILLed and restarted on its
	// journal, and the ring must answer history from recovered stores.
	before, err := fetchFlagged(client, base, fl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: flagged (pre-restart): %v\n", err)
		return 1
	}
	if err := h.restartAllPeers(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: %v\n", err)
		return 1
	}
	after, err := fetchFlagged(client, base, fl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: flagged (post-restart): %v\n", err)
		return 1
	}
	for dev, want := range before {
		if !bytes.Equal(after[dev], want) {
			fmt.Fprintf(os.Stderr, "fleetload: flagged answer for %s changed across the power cycle:\n  pre:  %s\n  post: %s\n",
				dev, want, after[dev])
			return 1
		}
	}
	fmt.Printf("fleetload: %d flagged answers byte-stable across a fleet-wide SIGKILL restart\n", len(before))

	c := sentry.Evaluate(snap, fl)
	if !c.AccountingOK {
		fmt.Fprintf(os.Stderr, "fleetload: ACCOUNTING VIOLATION: detected %d + clean %d + shed %d != reported %d\n",
			snap.Detected, snap.Clean, snap.Shed, snap.DevicesReported)
		return 1
	}
	if cfg.requirePerf && !c.Perfect() {
		fmt.Fprintf(os.Stderr, "fleetload: conformance FAILED: TP=%d FP=%d FN=%d mismatches=%d\n",
			c.TP, c.FP, c.FN, c.PatternMismatches)
		return 1
	}

	if err := h.shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: shutdown: %v\n", err)
		return 1
	}
	ok = true
	fmt.Println("fleetload: ring run complete: clean exits all around")
	return 0
}

// postSwap applies the rule swap at the router and requires the fan-out
// to reach every peer.
func postSwap(client *http.Client, base string, peers int, u sentry.ConfigUpdate) error {
	body, err := u.Encode()
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/config", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var fan sentring.ConfigFanout
	if err := json.Unmarshal(raw, &fan); err != nil {
		return err
	}
	if fan.PeersAcked != peers {
		return fmt.Errorf("config fan-out reached %d of %d peers", fan.PeersAcked, peers)
	}
	fmt.Printf("fleetload: rules swapped to version %d (%d/%d peers acked)\n", fan.Version, fan.PeersAcked, fan.Peers)
	return nil
}

// replayProbe streams the post-swap probe device through the router.
func replayProbe(client *http.Client, base string, batch int) error {
	recs := probeRecords()
	if batch < 1 {
		batch = len(recs)
	}
	for start := 0; start < len(recs); start += batch {
		end := start + batch
		if end > len(recs) {
			end = len(recs)
		}
		body, err := sentry.EncodeBatch(recs[start:end])
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/v1/ingest?device="+probeDevice, "text/plain", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("probe batch: status %d", resp.StatusCode)
		}
	}
	return nil
}

// referenceSnapshot replays the whole scenario through one bare engine.
func referenceSnapshot(cfg config, fl *sentry.Fleet, swapU sentry.ConfigUpdate) (sentry.Snapshot, error) {
	ref, err := sentry.NewEngine(sentry.Config{})
	if err != nil {
		return sentry.Snapshot{}, err
	}
	for _, d := range fl.Devices {
		if d.ID == probeDevice {
			continue // replayed post-swap below
		}
		if _, err := ref.Ingest(d.ID, d.Records); err != nil {
			return sentry.Snapshot{}, fmt.Errorf("%s: %w", d.ID, err)
		}
	}
	if cfg.swap {
		if _, err := ref.ApplyConfig(swapU); err != nil {
			return sentry.Snapshot{}, err
		}
		if _, err := ref.Ingest(probeDevice, probeRecords()); err != nil {
			return sentry.Snapshot{}, err
		}
	}
	return ref.Snapshot(), nil
}

// detectionMismatches compares flagged device→pattern maps. Detection
// content (At, Calls) can legitimately differ across crash/recovery
// timing; which devices are flagged, and for what, cannot.
func detectionMismatches(got, want sentry.Snapshot) int {
	gm := make(map[string]string, len(got.Detections))
	for _, d := range got.Detections {
		gm[d.Device] = d.Pattern
	}
	wm := make(map[string]string, len(want.Detections))
	for _, d := range want.Detections {
		wm[d.Device] = d.Pattern
	}
	n := 0
	for dev, p := range gm {
		if wm[dev] != p {
			fmt.Fprintf(os.Stderr, "fleetload: mismatch: %s flagged %q, reference %q\n", dev, p, wm[dev])
			n++
		}
	}
	for dev, p := range wm {
		if _, ok := gm[dev]; !ok {
			fmt.Fprintf(os.Stderr, "fleetload: mismatch: %s missing (reference flagged %q)\n", dev, p)
			n++
		}
	}
	return n
}

// checkRouterAccounting fetches the router's /stats and enforces the
// exclusive batch classification identities.
func checkRouterAccounting(client *http.Client, base string) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st sentring.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if st.Service != "sentryrouter" {
		return fmt.Errorf("stats service %q, want sentryrouter", st.Service)
	}
	if st.Routed+st.Degraded+st.Sheds+st.Failed != st.Batches {
		return fmt.Errorf("ROUTER ACCOUNTING VIOLATION: routed %d + degraded %d + shed %d + failed %d != batches %d",
			st.Routed, st.Degraded, st.Sheds, st.Failed, st.Batches)
	}
	if st.Batches+st.BadBatches+st.RefusedBatches != st.IngestCalls {
		return fmt.Errorf("ROUTER ACCOUNTING VIOLATION: batches %d + bad %d + refused %d != calls %d",
			st.Batches, st.BadBatches, st.RefusedBatches, st.IngestCalls)
	}
	fmt.Printf("fleetload: router accounting exact: %d batches = %d routed + %d degraded + %d shed + %d failed (retries %d, dup acks %d)\n",
		st.Batches, st.Routed, st.Degraded, st.Sheds, st.Failed, st.Retries, st.DupAcks)
	return nil
}

// printVersionHistogram summarizes which rule-set version produced each
// detection.
func printVersionHistogram(snap sentry.Snapshot) {
	hist := map[uint64]int{}
	for _, d := range snap.Detections {
		hist[d.ConfigVersion]++
	}
	versions := make([]uint64, 0, len(hist))
	for v := range hist {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	parts := make([]string, len(versions))
	for i, v := range versions {
		parts[i] = fmt.Sprintf("v%d:%d", v, hist[v])
	}
	fmt.Printf("fleetload: detections by config version: %s\n", strings.Join(parts, " "))
}

// checkProbeVersion requires the post-swap probe detection to carry the
// swapped version.
func checkProbeVersion(snap sentry.Snapshot, swapU sentry.ConfigUpdate) error {
	for _, d := range snap.Detections {
		if d.Device != probeDevice {
			continue
		}
		if d.ConfigVersion < 2 {
			return fmt.Errorf("post-swap probe detection carries config version %d, want the swapped version", d.ConfigVersion)
		}
		return nil
	}
	return fmt.Errorf("post-swap probe device %s not detected", probeDevice)
}

// fetchFlagged pulls the /v1/flagged answer bytes for every planted
// attack device (the history a restarted ring must reproduce exactly).
func fetchFlagged(client *http.Client, base string, fl *sentry.Fleet) (map[string][]byte, error) {
	devices := make([]string, 0, len(fl.Truth))
	for dev := range fl.Truth {
		devices = append(devices, dev)
	}
	sort.Strings(devices)
	out := make(map[string][]byte, len(devices))
	for _, dev := range devices {
		resp, err := client.Get(base + "/v1/flagged?device=" + dev)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dev, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dev, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d: %s", dev, resp.StatusCode, body)
		}
		out[dev] = body
	}
	return out, nil
}
