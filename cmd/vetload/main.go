// Command vetload is the deterministic load generator and benchmark
// client for vetd. It replays a seeded synthetic install workload drawn
// from the appstore corpus (the same generator the §VI market study
// scans, so the malicious fraction matches the paper's rates), with a
// Zipf-skewed duplicate distribution — a handful of popular APKs
// dominate install traffic, which is exactly what makes the
// content-addressed verdict cache pay — and reports throughput, client
// -observed latency percentiles, cache hit rate and shed rate.
//
// With -check, every 200 verdict is compared byte-for-byte (on the
// deadline- and transport-independent Verdict core) against a direct
// in-process defense.Vet of the same IR, proving the serving layer —
// cache, coalescing, batching — never changes a verdict. The run exits
// nonzero on any mismatch. -tier must match the server's -tier: the
// verdict core includes the tier, so a mismatch fails loudly instead of
// silently comparing different analyses.
//
// A 429 shed is honored, not hammered: the client sleeps out the
// server's Retry-After hint (capped, with seeded jitter) and re-sends up
// to -retry429 times before abandoning; retried-vs-abandoned counts are
// reported.
//
// Ring mode (-ring N) turns vetload into the chaos harness for the
// distributed serving plane: it spawns N vetd peers (each with its own
// crash-safe store under -store-dir) plus a vetrouter on ephemeral
// ports, replays the corpus against the router while -chaos SIGKILLs
// and restarts seeded-chosen peers mid-run, and requires a clean SIGINT
// shutdown from every process. -check works unchanged — replicated,
// degraded and recovered-from-store verdicts must all match the direct
// analysis byte-for-byte.
//
// Usage:
//
//	vetload -addr http://127.0.0.1:8474 -n 10000 -check
//	vetload -addr http://127.0.0.1:8474 -duration 10s -clients 32 -qps 500
//	vetload -addr http://127.0.0.1:8474 -n 10000 -tier 2 -check
//	vetload -ring 3 -vetd-bin ./vetd -router-bin ./vetrouter -duration 2s -chaos 600ms -check
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appstore"
	"repro/internal/defense"
	"repro/internal/simrand"
	"repro/internal/staticanalysis"
	"repro/internal/vetd"
	"repro/internal/vetring"
)

func main() {
	os.Exit(run())
}

type config struct {
	addr       string
	seed       int64
	n          int
	duration   time.Duration
	clients    int
	distinct   int
	zipfS      float64
	qps        float64
	batch      int
	deadlineMS int
	check      bool
	retry429   int
	tier       staticanalysis.Tier

	// Ring mode.
	ring      int
	vetdBin   string
	routerBin string
	storeDir  string
	replicas  int
	chaos     time.Duration
	netFaults string
}

// target is one corpus app, pre-encoded and (under -check) pre-vetted.
type target struct {
	pkg      string
	body     []byte // marshaled VetRequest
	app      json.RawMessage
	wantCore []byte // expected Verdict.Core bytes, nil unless -check
}

// sample aggregates one client's observations.
type sample struct {
	latencies  []time.Duration
	ok, shed   int
	expired    int
	other      int
	hits       int
	degraded   int
	denies     int
	mismatches int
	errs       int
	// retried counts logical requests that succeeded only after one or
	// more Retry-After waits; abandoned counts those still shed when the
	// retry budget ran out.
	retried   int
	abandoned int
}

func run() int {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8474", "vetd base URL")
	flag.Int64Var(&cfg.seed, "seed", 42, "workload seed (corpus content and request order)")
	flag.IntVar(&cfg.n, "n", 10000, "total requests to send (ignored when -duration is set)")
	flag.DurationVar(&cfg.duration, "duration", 0, "run for a wall-clock duration instead of a fixed count")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client connections")
	flag.IntVar(&cfg.distinct, "distinct", 512, "distinct apps in the replayed corpus")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.1, "Zipf skew exponent for app popularity (0 = uniform)")
	flag.Float64Var(&cfg.qps, "qps", 0, "aggregate request rate target (0 = unlimited)")
	flag.IntVar(&cfg.batch, "batch", 1, "apps per request; >1 uses POST /v1/vet/batch")
	flag.IntVar(&cfg.deadlineMS, "deadline-ms", 0, "per-request deadline_ms hint (0 = server default)")
	flag.BoolVar(&cfg.check, "check", false, "verify every served verdict byte-identical to direct defense.Vet")
	flag.IntVar(&cfg.retry429, "retry429", 1, "retries per request after a 429, honoring Retry-After (capped, jittered)")
	tierArg := flag.String("tier", "0", "static precision tier the server runs at (must match vetd -tier)")
	flag.IntVar(&cfg.ring, "ring", 0, "spawn a ring of N vetd peers + vetrouter and load the router (0 = load -addr directly)")
	flag.StringVar(&cfg.vetdBin, "vetd-bin", "", "vetd binary for -ring mode")
	flag.StringVar(&cfg.routerBin, "router-bin", "", "vetrouter binary for -ring mode")
	flag.StringVar(&cfg.storeDir, "store-dir", "", "root directory for per-peer verdict stores in -ring mode (default: a temp dir)")
	flag.IntVar(&cfg.replicas, "replicas", 2, "replica set size in -ring mode")
	flag.DurationVar(&cfg.chaos, "chaos", 0, "mean interval between peer SIGKILL/restart cycles in -ring mode (0 disables)")
	flag.StringVar(&cfg.netFaults, "net-faults", "none", "network fault profile the router injects in -ring mode")
	flag.Parse()
	tier, err := staticanalysis.ParseTier(*tierArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetload: %v\n", err)
		return 2
	}
	cfg.tier = tier
	if cfg.clients < 1 || cfg.distinct < 1 || cfg.batch < 1 {
		fmt.Fprintln(os.Stderr, "vetload: -clients, -distinct and -batch must be >= 1")
		return 2
	}

	var harness *ringHarness
	if cfg.ring > 0 {
		if cfg.vetdBin == "" || cfg.routerBin == "" {
			fmt.Fprintln(os.Stderr, "vetload: -ring requires -vetd-bin and -router-bin")
			return 2
		}
		h, routerURL, err := startRing(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vetload: ring: %v\n", err)
			return 1
		}
		harness = h
		cfg.addr = routerURL
		fmt.Printf("vetload: ring of %d peers up behind %s (chaos %v, faults %s)\n",
			cfg.ring, routerURL, cfg.chaos, cfg.netFaults)
	}

	targets, corpusDenies, err := buildCorpus(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetload: corpus: %v\n", err)
		if harness != nil {
			harness.stopAll()
		}
		return 1
	}
	fmt.Printf("vetload: corpus %d distinct apps, %d denied by direct policy (%.1f%%), zipf s=%.2f\n",
		len(targets), corpusDenies, 100*float64(corpusDenies)/float64(len(targets)), cfg.zipfS)

	picker := newZipf(cfg.zipfS, cfg.distinct, simrand.New(cfg.seed).Derive("vetload/perm"))

	var sent atomic.Int64
	stopAt := time.Time{}
	if cfg.duration > 0 {
		stopAt = time.Now().Add(cfg.duration)
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.clients},
		Timeout:   30 * time.Second,
	}

	if harness != nil && cfg.chaos > 0 {
		harness.startChaos(cfg)
	}
	samples := make([]sample, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(cfg, c, client, targets, picker, &sent, stopAt, &samples[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if harness != nil {
		harness.stopChaos()
	}

	code := report(cfg, samples, elapsed, client)
	if harness != nil {
		fmt.Printf("vetload: chaos: %d peer kill/restart cycles\n", harness.kills)
		if err := harness.shutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "vetload: ring shutdown: %v\n", err)
			return 1
		}
		fmt.Println("vetload: ring shut down cleanly")
	}
	return code
}

// buildCorpus generates the seeded corpus slice and pre-encodes request
// bodies; under -check it also computes each app's expected verdict core.
func buildCorpus(cfg config) ([]target, int, error) {
	apks, err := appstore.GenerateApps(cfg.seed, 0, cfg.distinct)
	if err != nil {
		return nil, 0, err
	}
	targets := make([]target, len(apks))
	denies := 0
	for i, apk := range apks {
		raw, err := json.Marshal(apk.IR)
		if err != nil {
			return nil, 0, err
		}
		body, err := json.Marshal(vetd.VetRequest{App: apk.IR})
		if err != nil {
			return nil, 0, err
		}
		targets[i] = target{pkg: apk.Package, body: body, app: raw}
		v, err := defense.VetTier(apk.IR, cfg.tier)
		if err != nil {
			return nil, 0, fmt.Errorf("direct vet of %s: %w", apk.Package, err)
		}
		if !v.Allow {
			denies++
		}
		if cfg.check {
			hash, err := vetd.HashIR(apk.IR)
			if err != nil {
				return nil, 0, err
			}
			core, err := vetd.NewVerdict(v, hash, false).Core()
			if err != nil {
				return nil, 0, err
			}
			targets[i].wantCore = core
		}
	}
	return targets, denies, nil
}

// zipf is a precomputed rank-frequency sampler: rank r (1-based) has
// weight r^-s, and ranks map onto corpus indices through a seeded
// permutation so the hot set is not simply the first generated apps.
type zipf struct {
	cdf  []float64
	perm []int
}

func newZipf(s float64, n int, rng *simrand.Source) *zipf {
	z := &zipf{cdf: make([]float64, n), perm: rng.Perm(n)}
	total := 0.0
	for r := 1; r <= n; r++ {
		total += math.Pow(float64(r), -s)
		z.cdf[r-1] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

func (z *zipf) pick(rng *simrand.Source) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.perm) {
		i = len(z.perm) - 1
	}
	return z.perm[i]
}

func runClient(cfg config, id int, client *http.Client, targets []target, picker *zipf, sent *atomic.Int64, stopAt time.Time, out *sample) {
	rng := simrand.New(cfg.seed).DeriveIndexed("vetload/client", id)
	var interval time.Duration
	if cfg.qps > 0 {
		interval = time.Duration(float64(cfg.clients) / cfg.qps * float64(time.Second))
	}
	next := time.Now()
	for {
		if stopAt.IsZero() {
			if sent.Add(int64(cfg.batch)) > int64(cfg.n) {
				return
			}
		} else if time.Now().After(stopAt) {
			return
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		if cfg.batch > 1 {
			doBatch(cfg, client, targets, picker, rng, out)
		} else {
			doVet(cfg, client, &targets[picker.pick(rng)], rng, out)
		}
	}
}

func urlSuffix(cfg config) string {
	if cfg.deadlineMS > 0 {
		return fmt.Sprintf("?deadline_ms=%d", cfg.deadlineMS)
	}
	return ""
}

// retryAfterCap bounds how long a client honors a Retry-After hint —
// servers hint in whole seconds, which would stall a short replay.
const retryAfterCap = 300 * time.Millisecond

// retryDelay converts a 429's Retry-After header into the wait before
// the next attempt: the hinted duration, capped, with seeded jitter in
// [0.5x, 1.5x] so retrying clients don't re-converge on the same
// instant (the thundering-herd shape Retry-After exists to prevent).
func retryDelay(resp *http.Response, rng *simrand.Source) time.Duration {
	d := retryAfterCap
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		if hinted := time.Duration(sec) * time.Second; hinted < d {
			d = hinted
		}
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

func doVet(cfg config, client *http.Client, tg *target, rng *simrand.Source, out *sample) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(cfg.addr+"/v1/vet"+urlSuffix(cfg), "application/json", bytes.NewReader(tg.body))
		if err != nil {
			out.errs++
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < cfg.retry429 {
			time.Sleep(retryDelay(resp, rng))
			continue
		}
		// Final outcome: one logical request, classified once; the
		// latency includes any Retry-After waits (the client-observed
		// truth under shedding).
		out.latencies = append(out.latencies, time.Since(start))
		classify(resp.StatusCode, out)
		if attempt > 0 {
			if resp.StatusCode == http.StatusOK {
				out.retried++
			} else {
				out.abandoned++
			}
		}
		if resp.StatusCode == http.StatusOK {
			checkVerdict(cfg, tg, body, out)
		}
		return
	}
}

func doBatch(cfg config, client *http.Client, targets []target, picker *zipf, rng *simrand.Source, out *sample) {
	picks := make([]int, cfg.batch)
	apps := make([]json.RawMessage, cfg.batch)
	for i := range picks {
		picks[i] = picker.pick(rng)
		apps[i] = targets[picks[i]].app
	}
	body, _ := json.Marshal(map[string]any{"apps": apps})
	start := time.Now()
	var resp *http.Response
	var err error
	var raw []byte
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(cfg.addr+"/v1/vet/batch"+urlSuffix(cfg), "application/json", bytes.NewReader(body))
		if err != nil {
			out.errs += cfg.batch
			return
		}
		raw, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < cfg.retry429 {
			time.Sleep(retryDelay(resp, rng))
			continue
		}
		if attempt > 0 {
			if resp.StatusCode == http.StatusOK {
				out.retried += cfg.batch
			} else {
				out.abandoned += cfg.batch
			}
		}
		break
	}
	out.latencies = append(out.latencies, time.Since(start))
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			out.shed += cfg.batch
		} else {
			out.other += cfg.batch
		}
		return
	}
	var br vetd.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil || len(br.Verdicts) != cfg.batch {
		out.errs += cfg.batch
		return
	}
	for i, item := range br.Verdicts {
		classify(item.Status, out)
		if item.Status == http.StatusOK && item.Verdict != nil {
			vb, _ := json.Marshal(item.Verdict)
			checkVerdict(cfg, &targets[picks[i]], vb, out)
		}
	}
}

func classify(status int, out *sample) {
	switch status {
	case http.StatusOK:
		out.ok++
	case http.StatusTooManyRequests:
		out.shed++
	case http.StatusGatewayTimeout:
		out.expired++
	default:
		out.other++
	}
}

func checkVerdict(cfg config, tg *target, body []byte, out *sample) {
	var v vetd.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		out.errs++
		return
	}
	if v.Cached {
		out.hits++
	}
	if v.Degraded {
		out.degraded++
	}
	if !v.Allow {
		out.denies++
	}
	if cfg.check {
		core, err := v.Core()
		if err != nil || !bytes.Equal(core, tg.wantCore) {
			out.mismatches++
			if out.mismatches <= 3 {
				fmt.Fprintf(os.Stderr, "vetload: MISMATCH %s:\n  got  %s\n  want %s\n", tg.pkg, core, tg.wantCore)
			}
		}
	}
}

func report(cfg config, samples []sample, elapsed time.Duration, client *http.Client) int {
	var all sample
	for _, s := range samples {
		all.latencies = append(all.latencies, s.latencies...)
		all.ok += s.ok
		all.shed += s.shed
		all.expired += s.expired
		all.other += s.other
		all.hits += s.hits
		all.degraded += s.degraded
		all.denies += s.denies
		all.mismatches += s.mismatches
		all.errs += s.errs
		all.retried += s.retried
		all.abandoned += s.abandoned
	}
	total := all.ok + all.shed + all.expired + all.other
	sort.Slice(all.latencies, func(i, j int) bool { return all.latencies[i] < all.latencies[j] })
	pct := func(p float64) time.Duration {
		if len(all.latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(all.latencies)))
		if i >= len(all.latencies) {
			i = len(all.latencies) - 1
		}
		return all.latencies[i]
	}

	fmt.Printf("vetload: %d requests in %v (%.0f req/s), %d transport errors\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), all.errs)
	fmt.Printf("vetload: 200 ok %d, 429 shed %d, 504 expired %d, other %d\n",
		all.ok, all.shed, all.expired, all.other)
	if all.ok > 0 {
		fmt.Printf("vetload: cache hit rate %.1f%% (client-observed), deny rate %.1f%%\n",
			100*float64(all.hits)/float64(all.ok), 100*float64(all.denies)/float64(all.ok))
	}
	if all.degraded > 0 {
		fmt.Printf("vetload: degraded verdicts %d (%.1f%% of 200s) — ring fell back to local analysis\n",
			all.degraded, 100*float64(all.degraded)/float64(all.ok))
	}
	if total > 0 {
		fmt.Printf("vetload: shed rate %.1f%%\n", 100*float64(all.shed)/float64(total))
	}
	if all.retried+all.abandoned > 0 {
		fmt.Printf("vetload: 429 backoff: %d recovered by Retry-After waits, %d abandoned after %d retries\n",
			all.retried, all.abandoned, cfg.retry429)
	}
	fmt.Printf("vetload: latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1))

	if code := checkServerStats(cfg, client); code != 0 {
		return code
	}

	if cfg.check {
		fmt.Printf("vetload: check mode: %d mismatches across %d served verdicts\n", all.mismatches, all.ok)
		if all.mismatches > 0 {
			return 1
		}
	}
	if all.errs > 0 {
		return 1
	}
	return 0
}

// checkServerStats fetches /stats and enforces the exclusive accounting
// invariant of whichever service answers: hits+misses+sheds == requests
// for a vetd node, replicated+degraded+sheds+failed == requests for the
// ring router. The "service" field discriminates; an unreachable or
// undecodable /stats is reported but not fatal (the server may already
// be shutting down).
func checkServerStats(cfg config, client *http.Client) int {
	resp, err := client.Get(cfg.addr + "/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetload: stats unavailable: %v\n", err)
		return 0
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	var probe struct {
		Service string `json:"service"`
	}
	json.Unmarshal(raw, &probe)
	switch probe.Service {
	case "vetrouter":
		var st vetring.Stats
		if json.Unmarshal(raw, &st) != nil {
			return 0
		}
		fmt.Printf("vetload: router stats: requests=%d replicated=%d degraded=%d sheds=%d failed=%d retries=%d failovers=%d peer_errors=%d\n",
			st.Requests, st.Replicated, st.Degraded, st.Sheds, st.Failed, st.Retries, st.Failovers, st.PeerErrors)
		for _, p := range st.Peers {
			fmt.Printf("vetload:   peer %s: served=%d errors=%d breaker=%s (opened %dx)\n",
				p.Name, p.Served, p.Errors, p.Breaker, p.Opens)
		}
		if st.Replicated+st.Degraded+st.Sheds+st.Failed != st.Requests {
			fmt.Fprintf(os.Stderr, "vetload: ROUTER ACCOUNTING BROKEN: replicated+degraded+sheds+failed != requests\n")
			return 1
		}
	default: // "vetd", or a pre-service-field server
		var st vetd.Stats
		if json.Unmarshal(raw, &st) != nil {
			return 0
		}
		fmt.Printf("vetload: server stats: requests=%d hits=%d misses=%d (coalesced=%d, store=%d) sheds=%d analyses=%d queue_depth=%d hit_rate=%.1f%%\n",
			st.Requests, st.Hits, st.Misses, st.Coalesced, st.StoreHits, st.Sheds, st.Analyses, st.QueueDepth, 100*st.HitRate)
		if st.Hits+st.Misses+st.Sheds != st.Requests {
			fmt.Fprintf(os.Stderr, "vetload: SERVER ACCOUNTING BROKEN: hits+misses+sheds != requests\n")
			return 1
		}
	}
	return 0
}
