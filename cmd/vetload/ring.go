package main

// Ring mode: vetload as the chaos harness for the distributed serving
// plane. With -ring N it spawns N vetd peers (each with its own
// crash-safe store) and one vetrouter on ephemeral ports, replays the
// seeded corpus against the router, and — with -chaos — SIGKILLs a
// seeded sequence of peers mid-run and restarts each on the same
// address and store directory, proving the ring keeps answering
// byte-correct verdicts (zero -check mismatches) through crashes,
// recoveries and whatever network fault profile the router injects.
// Everything shuts down on SIGINT at the end; an unclean exit from any
// process fails the run.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/simrand"
)

// proc is one spawned ring process (a vetd peer or the router).
type proc struct {
	label string
	bin   string
	args  []string

	mu   sync.Mutex
	cmd  *exec.Cmd
	addr string
	done chan error
}

// spawn starts the process and waits for its "<label>: listening on
// ADDR" line, mirroring how scripts/verify.sh finds ephemeral ports.
// All process output is forwarded to our stdout, prefixed.
func spawn(label, bin string, args []string, listenPrefix string) (*proc, error) {
	p := &proc{label: label, bin: bin, args: args}
	if err := p.start(listenPrefix); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *proc) start(listenPrefix string) error {
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, listenPrefix); ok {
				select {
				case addrc <- strings.Fields(a)[0]:
				default:
				}
			}
			fmt.Printf("  [%s] %s\n", p.label, line)
		}
		done <- cmd.Wait()
	}()
	select {
	case addr := <-addrc:
		p.mu.Lock()
		p.cmd, p.addr, p.done = cmd, addr, done
		p.mu.Unlock()
		return nil
	case err := <-done:
		return fmt.Errorf("%s exited before listening: %v", p.label, err)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return fmt.Errorf("%s: no listening line within 10s", p.label)
	}
}

// kill SIGKILLs the process and reaps it.
func (p *proc) kill() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		<-done
	}
}

// restart re-execs the process on its previous concrete address (the
// restart path of a crashed peer: same identity, same store).
func (p *proc) restart(listenPrefix string) error {
	p.mu.Lock()
	// Rewrite -addr to the concrete address from the first spawn so the
	// ring topology is unchanged.
	args := make([]string, len(p.args))
	copy(args, p.args)
	for i := 0; i < len(args)-1; i++ {
		if args[i] == "-addr" {
			args[i+1] = p.addr
		}
	}
	p.args = args
	p.mu.Unlock()
	return p.start(listenPrefix)
}

// interrupt SIGINTs the process and returns its exit error (nil for a
// clean exit 0).
func (p *proc) interrupt(timeout time.Duration) error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("%s: not running", p.label)
	}
	cmd.Process.Signal(syscall.SIGINT)
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("%s: no clean exit within %v; killed", p.label, timeout)
	}
}

// ringHarness owns the spawned topology.
type ringHarness struct {
	peers  []*proc
	router *proc

	chaosStop chan struct{}
	chaosDone chan struct{}
	kills     int
}

// startRing spawns cfg.ring vetd peers and the router, returning the
// router's base URL.
func startRing(cfg config) (*ringHarness, string, error) {
	storeRoot := cfg.storeDir
	if storeRoot == "" {
		dir, err := os.MkdirTemp("", "vetload-ring-")
		if err != nil {
			return nil, "", err
		}
		storeRoot = dir
	}
	h := &ringHarness{}
	tier := strconv.Itoa(int(cfg.tier))
	for i := 0; i < cfg.ring; i++ {
		dir := filepath.Join(storeRoot, fmt.Sprintf("peer%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			h.stopAll()
			return nil, "", err
		}
		p, err := spawn(fmt.Sprintf("vetd%d", i), cfg.vetdBin, []string{
			"-addr", "127.0.0.1:0", "-tier", tier, "-store", dir,
		}, "vetd: listening on ")
		if err != nil {
			h.stopAll()
			return nil, "", err
		}
		h.peers = append(h.peers, p)
	}
	peerAddrs := make([]string, len(h.peers))
	for i, p := range h.peers {
		peerAddrs[i] = p.addr
	}
	router, err := spawn("router", cfg.routerBin, []string{
		"-addr", "127.0.0.1:0",
		"-peers", strings.Join(peerAddrs, ","),
		"-replicas", strconv.Itoa(cfg.replicas),
		"-tier", tier,
		"-net-faults", cfg.netFaults,
		"-net-seed", strconv.FormatInt(cfg.seed, 10),
		"-seed", strconv.FormatInt(cfg.seed, 10),
	}, "vetrouter: listening on ")
	if err != nil {
		h.stopAll()
		return nil, "", err
	}
	h.router = router
	return h, "http://" + router.addr, nil
}

// startChaos begins the seeded kill/restart schedule: every interval
// (jittered) one seeded-chosen peer is SIGKILLed, left down briefly,
// and restarted on the same address and store.
func (h *ringHarness) startChaos(cfg config) {
	h.chaosStop = make(chan struct{})
	h.chaosDone = make(chan struct{})
	rng := simrand.New(cfg.seed).Derive("vetload/chaos")
	go func() {
		defer close(h.chaosDone)
		for {
			wait := time.Duration(float64(cfg.chaos) * (0.5 + rng.Float64()))
			select {
			case <-h.chaosStop:
				return
			case <-time.After(wait):
			}
			victim := h.peers[rng.Intn(len(h.peers))]
			fmt.Printf("vetload: chaos: SIGKILL %s (%s)\n", victim.label, victim.addr)
			victim.kill()
			h.kills++
			downFor := time.Duration(float64(cfg.chaos) * 0.25 * (0.5 + rng.Float64()))
			select {
			case <-h.chaosStop:
				// Restart even when stopping, so the final shutdown pass
				// finds every peer alive and can verify clean exits.
				if err := victim.restart("vetd: listening on "); err != nil {
					fmt.Fprintf(os.Stderr, "vetload: chaos: restart %s: %v\n", victim.label, err)
				}
				return
			case <-time.After(downFor):
			}
			if err := victim.restart("vetd: listening on "); err != nil {
				fmt.Fprintf(os.Stderr, "vetload: chaos: restart %s: %v\n", victim.label, err)
				return
			}
			fmt.Printf("vetload: chaos: restarted %s on %s\n", victim.label, victim.addr)
		}
	}()
}

func (h *ringHarness) stopChaos() {
	if h.chaosStop != nil {
		close(h.chaosStop)
		<-h.chaosDone
	}
}

// shutdown SIGINTs the router then every peer, requiring clean exits.
func (h *ringHarness) shutdown() error {
	var firstErr error
	if h.router != nil {
		if err := h.router.interrupt(10 * time.Second); err != nil {
			firstErr = fmt.Errorf("router: %w", err)
		}
	}
	for _, p := range h.peers {
		if err := p.interrupt(10 * time.Second); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", p.label, err)
		}
	}
	return firstErr
}

// stopAll is the error-path cleanup: kill everything, ignore outcomes.
func (h *ringHarness) stopAll() {
	if h.router != nil {
		h.router.kill()
	}
	for _, p := range h.peers {
		p.kill()
	}
}
