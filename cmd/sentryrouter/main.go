// Command sentryrouter fronts a ring of sentryd peers
// (internal/sentring): it shards the device fleet by consistent hashing
// with R-way batch replication, retries incomplete replica sets with
// bounded seeded backoff, opens per-peer circuit breakers fed by
// background /readyz probes, and degrades to a local detection engine
// (responses stamped "degraded":true) when every replica for a device
// is unreachable. GET /v1/report merges the peers' per-device
// accounting into one exact fleet report; GET /v1/flagged proxies the
// device's replicas; POST /v1/config fans a versioned rule swap to
// every peer and re-pushes it to peers that restart.
//
// Its HTTP surface mirrors sentryd's, so clients cannot tell a node
// from the ring. It prints "sentryrouter: listening on ADDR" once bound
// and shuts down cleanly on SIGINT/SIGTERM.
//
// -net-faults injects a deterministic network fault profile (see
// internal/faults.NetNames) beneath the peer clients — the chaos lever
// cmd/fleetload's ring mode pulls.
//
// Usage:
//
//	sentryrouter -addr :8486 -peers 127.0.0.1:9001,127.0.0.1:9002 -replicas 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/sentring"
	"repro/internal/sentry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8486", "listen address (host:port; :0 picks an ephemeral port)")
		peersArg   = flag.String("peers", "", "comma-separated sentryd peer addresses (host:port), in ring order")
		replicas   = flag.Int("replicas", 2, "replica set size per device")
		vnodes     = flag.Int("vnodes", 64, "virtual ring points per peer")
		deadline   = flag.Duration("deadline", 2*time.Second, "per-peer-attempt deadline")
		retries    = flag.Int("retries", 1, "extra retry passes over the replica set")
		probe      = flag.Duration("probe", 250*time.Millisecond, "health probe interval (negative disables)")
		fallbackC  = flag.Int("fallback", 4, "max concurrent local degraded ingests")
		seed       = flag.Int64("seed", 1, "seed for retry-backoff jitter")
		window     = flag.Duration("window", 3*time.Second, "fallback engine sliding window (match the peers)")
		minCalls   = flag.Int("min-calls", 8, "fallback engine MinCalls (match the peers)")
		maxGap     = flag.Duration("max-gap", 50*time.Millisecond, "fallback engine MaxSwapGap (match the peers)")
		minSwaps   = flag.Int("min-swaps", 4, "fallback engine MinSwaps (match the peers)")
		notifFlood = flag.Int("notif-flood", 30, "fallback engine NotifFlood (match the peers)")
		netProf    = flag.String("net-faults", "none", "injected network fault profile: "+strings.Join(faults.NetNames(), ", "))
		netSeed    = flag.Int64("net-seed", 1, "seed for the network fault plane")
	)
	flag.Parse()
	if *peersArg == "" {
		fmt.Fprintln(os.Stderr, "sentryrouter: -peers is required")
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peersArg, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	prof, err := faults.NetByName(*netProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentryrouter: %v\n", err)
		return 2
	}
	var plane *faults.NetPlane
	if !prof.Zero() {
		plane = faults.NewNetPlane(prof, *netSeed)
	}

	router, err := sentring.New(sentring.Config{
		Peers:    peers,
		Replicas: *replicas,
		VNodes:   *vnodes,
		Engine: sentry.Config{
			Window:     *window,
			MinCalls:   *minCalls,
			MaxSwapGap: *maxGap,
			MinSwaps:   *minSwaps,
			NotifFlood: *notifFlood,
		},
		Deadline:            *deadline,
		Retries:             *retries,
		ProbeInterval:       *probe,
		FallbackConcurrency: *fallbackC,
		Seed:                *seed,
		NetPlane:            plane,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentryrouter: %v\n", err)
		return 2
	}
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sentryrouter: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: router}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("sentryrouter: listening on %s (peers %s, replicas %d, faults %s)\n",
		ln.Addr(), router.PeerNames(), router.Ring().ReplicaCount(), prof.Name)

	select {
	case <-ctx.Done():
		fmt.Println("sentryrouter: signal received, shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "sentryrouter: serve: %v\n", err)
		return 1
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sentryrouter: shutdown: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sentryrouter: serve: %v\n", err)
		return 1
	}
	router.Close()
	st := router.Snapshot()
	fmt.Printf("sentryrouter: shutdown complete (batches=%d routed=%d degraded=%d sheds=%d failed=%d retries=%d config_version=%d)\n",
		st.Batches, st.Routed, st.Degraded, st.Sheds, st.Failed, st.Retries, st.ConfigVersion)
	if plane != nil {
		fmt.Printf("sentryrouter: net faults injected: %s\n", plane.Stats())
	}
	return 0
}
