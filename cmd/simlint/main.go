// Command simlint is the determinism and robustness vet pass for the
// simulation core: it forbids wall-clock reads (time.Now, time.Since) and
// global math/rand use inside internal/ packages, exempting
// internal/simrand and internal/simclock (the deterministic wrappers),
// and flags ranges over maps that append to a slice or write output in
// the loop body — map iteration order is randomized per run, so the
// aggregate must be sorted after the loop (the collect-keys-then-sort
// idiom is recognized and allowed).
// In production (non-test) files it additionally forbids time.Sleep and
// bare panic calls (internal/invariant, the assertion layer, is exempt
// from the panic rule), plus HTTP clients with no deadline
// (http.Get/Post and http.Client literals without a Timeout) — the one
// rule that also covers cmd/ binaries, whose package main files are
// otherwise outside the simulation contract. Run it alongside
// `go vet ./...` in the tier-1 verify path; scripts/verify.sh does.
//
// Usage:
//
//	simlint              # lint ./internal and ./cmd
//	simlint dir1 dir2    # lint specific trees
//
// Exit status is 0 when clean, 1 when findings exist, 2 on usage or
// parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/simlint"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	found := 0
	for _, root := range roots {
		diags, err := simlint.LintDir(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d determinism violations\n", found)
		return 1
	}
	return 0
}
