// Command vetrouter fronts a ring of vetd peers (internal/vetring): it
// shards the verdict keyspace by consistent hashing with R-way
// replication, fails over across replicas with bounded seeded-backoff
// retries, opens per-peer circuit breakers fed by background /readyz
// probes, and degrades to a local analysis (verdicts stamped
// "degraded":true) when every replica for a key is unreachable.
//
// Its HTTP surface mirrors vetd's, so clients cannot tell a node from
// the ring. It prints "vetrouter: listening on ADDR" once bound and
// shuts down cleanly on SIGINT/SIGTERM.
//
// -net-faults injects a deterministic network fault profile (see
// internal/faults.NetNames) beneath the peer clients — the chaos lever
// cmd/vetload's ring mode pulls.
//
// Usage:
//
//	vetrouter -addr :8475 -peers 127.0.0.1:9001,127.0.0.1:9002 -replicas 2 -tier 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/staticanalysis"
	"repro/internal/vetring"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8475", "listen address (host:port; :0 picks an ephemeral port)")
		peersArg  = flag.String("peers", "", "comma-separated vetd peer addresses (host:port), in ring order")
		replicas  = flag.Int("replicas", 2, "replica set size per verdict key")
		vnodes    = flag.Int("vnodes", 64, "virtual ring points per peer")
		tierArg   = flag.String("tier", "0", "static analysis precision tier (0..2); must match the peers")
		deadline  = flag.Duration("deadline", 2*time.Second, "per-peer-attempt deadline")
		retries   = flag.Int("retries", 1, "extra retry passes over the replica set")
		probe     = flag.Duration("probe", 250*time.Millisecond, "health probe interval (negative disables)")
		fallbackC = flag.Int("fallback", 4, "max concurrent local degraded analyses")
		seed      = flag.Int64("seed", 1, "seed for retry-backoff jitter")
		netProf   = flag.String("net-faults", "none", "injected network fault profile: "+strings.Join(faults.NetNames(), ", "))
		netSeed   = flag.Int64("net-seed", 1, "seed for the network fault plane")
	)
	flag.Parse()
	tier, err := staticanalysis.ParseTier(*tierArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetrouter: %v\n", err)
		return 2
	}
	if *peersArg == "" {
		fmt.Fprintln(os.Stderr, "vetrouter: -peers is required")
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peersArg, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	prof, err := faults.NetByName(*netProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetrouter: %v\n", err)
		return 2
	}
	var plane *faults.NetPlane
	if !prof.Zero() {
		plane = faults.NewNetPlane(prof, *netSeed)
	}

	router, err := vetring.New(vetring.Config{
		Peers:               peers,
		Replicas:            *replicas,
		VNodes:              *vnodes,
		Tier:                tier,
		Deadline:            *deadline,
		Retries:             *retries,
		ProbeInterval:       *probe,
		FallbackConcurrency: *fallbackC,
		Seed:                *seed,
		NetPlane:            plane,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetrouter: %v\n", err)
		return 2
	}
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetrouter: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: router}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("vetrouter: listening on %s (peers %s, replicas %d, faults %s)\n",
		ln.Addr(), router.PeerNames(), router.Ring().ReplicaCount(), prof.Name)

	select {
	case <-ctx.Done():
		fmt.Println("vetrouter: signal received, shutting down")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "vetrouter: serve: %v\n", err)
		return 1
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "vetrouter: shutdown: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "vetrouter: serve: %v\n", err)
		return 1
	}
	router.Close()
	st := router.Snapshot()
	fmt.Printf("vetrouter: shutdown complete (requests=%d replicated=%d degraded=%d sheds=%d failed=%d retries=%d)\n",
		st.Requests, st.Replicated, st.Degraded, st.Sheds, st.Failed, st.Retries)
	if plane != nil {
		fmt.Printf("vetrouter: net faults injected: %s\n", plane.Stats())
	}
	return 0
}
