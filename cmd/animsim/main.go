// Command animsim runs a single attack scenario on a chosen device and
// prints an event timeline — useful for understanding exactly how the
// draw-and-destroy races play out on a particular phone.
//
// Usage:
//
//	animsim -device "pixel 2" -attack overlay -d 280ms -for 3s
//	animsim -device Redmi -attack toast -for 10s
//	animsim -device mi8 -attack steal -password 'tk&%48GH'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/sysserver"
	"repro/internal/trace"
)

const attackerApp binder.ProcessID = "com.attacker.app"

func main() {
	os.Exit(run())
}

func run() int {
	var (
		model    = flag.String("device", "pixel 2", "device model (see Table II)")
		attack   = flag.String("attack", "overlay", "attack to run: overlay, toast, steal")
		d        = flag.Duration("d", 0, "attacking window D (default: 90% of the device's Table II bound)")
		runFor   = flag.Duration("for", 5*time.Second, "attack duration")
		password = flag.String("password", "tk&%48GH", "password the victim types (steal attack)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		rawTrace = flag.Bool("trace", false, "print every simulation event")
		fig3     = flag.Bool("fig3", false, "print the Fig. 3-style entity-interaction diagram")
	)
	flag.Parse()

	p, ok := device.ByModel(*model)
	if !ok {
		fmt.Fprintf(os.Stderr, "animsim: unknown device %q; known models:\n", *model)
		for _, prof := range device.Profiles() {
			fmt.Fprintf(os.Stderr, "  %-12s (Android %s, D bound %v)\n", prof.Model, prof.Version, prof.PaperUpperBoundD)
		}
		return 2
	}
	if *d == 0 {
		*d = time.Duration(float64(p.PaperUpperBoundD) * 0.9)
	}
	st, err := sysserver.Assemble(p, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "animsim: %v\n", err)
		return 1
	}
	st.WM.GrantOverlayPermission(attackerApp)
	if *rawTrace {
		st.Clock.SetTrace(func(at time.Duration, label string) {
			fmt.Printf("%12v  %s\n", at, label)
		})
	}
	var recorder *trace.Recorder
	if *fig3 {
		recorder, err = trace.NewRecorder(attackerApp, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "animsim: %v\n", err)
			return 1
		}
		if err := recorder.Attach(st); err != nil {
			fmt.Fprintf(os.Stderr, "animsim: %v\n", err)
			return 1
		}
	}
	fmt.Printf("device: %s — screen %dx%d, alert view %d px, Table II bound %v\n",
		p.Name(), p.ScreenW, p.ScreenH, p.NotifViewHeightPx, p.PaperUpperBoundD)
	fmt.Printf("attack: %s, D = %v, duration %v\n\n", *attack, *d, *runFor)

	var report func()
	switch *attack {
	case "overlay":
		report, err = runOverlay(st, *d, *runFor)
	case "toast":
		report, err = runToast(st, *runFor)
	case "steal":
		report, err = runSteal(st, *d, *password, *seed)
	default:
		fmt.Fprintf(os.Stderr, "animsim: unknown attack %q\n", *attack)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "animsim: %v\n", err)
		return 1
	}
	if err := st.Clock.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "animsim: run: %v\n", err)
		return 1
	}
	if recorder != nil {
		fmt.Println(recorder.Render())
	}
	report()
	return 0
}

func screenOf(p device.Profile) geom.Rect {
	return geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
}

func runOverlay(st *sysserver.Stack, d, dur time.Duration) (func(), error) {
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App: attackerApp, D: d, Bounds: screenOf(st.Profile),
	})
	if err != nil {
		return nil, err
	}
	if err := atk.Start(); err != nil {
		return nil, err
	}
	st.Clock.MustAfter(dur, "animsim/stop", atk.Stop)
	return func() {
		fmt.Printf("cycles run:        %d\n", atk.Cycles())
		fmt.Printf("alert episodes:    %d\n", len(st.UI.Episodes()))
		fmt.Printf("worst outcome:     %s (Λ1 = attack fully suppressed the alert)\n", st.UI.WorstOutcome())
		s := st.Server.Stats()
		fmt.Printf("adds/removes:      %d/%d\n", s.AddsCompleted, s.RemovesCompleted)
	}, nil
}

func runToast(st *sysserver.Stack, dur time.Duration) (func(), error) {
	atk, err := core.NewToastAttack(st, core.ToastAttackConfig{
		App:     attackerApp,
		Bounds:  geom.RectWH(0, 0.625*float64(st.Profile.ScreenH), float64(st.Profile.ScreenW), 0.375*float64(st.Profile.ScreenH)),
		Content: func() string { return "fake-keyboard" },
	})
	if err != nil {
		return nil, err
	}
	if err := atk.Start(); err != nil {
		return nil, err
	}
	minAlpha := 1.0
	var probe func()
	probe = func() {
		if st.Clock.Now() > dur {
			return
		}
		if a := st.WM.TopToastAlpha(attackerApp); a < minAlpha {
			minAlpha = a
		}
		st.Clock.MustAfter(10*time.Millisecond, "animsim/probe", probe)
	}
	st.Clock.MustAfter(time.Second, "animsim/probe", probe)
	st.Clock.MustAfter(dur, "animsim/stop", atk.Stop)
	return func() {
		fmt.Printf("toasts enqueued:   %d\n", atk.Enqueued())
		fmt.Printf("toasts shown:      %d\n", st.Server.Stats().ToastsShown)
		fmt.Printf("min opacity:       %.2f (after first fade-in; ≥0.5 means no visible flicker)\n", minAlpha)
		fmt.Printf("alert episodes:    %d (toasts trigger no alert)\n", len(st.UI.Episodes()))
	}, nil
}

func runSteal(st *sysserver.Stack, d time.Duration, password string, seed int64) (func(), error) {
	bofa, ok := apps.ByName("Bank of America")
	if !ok {
		return nil, fmt.Errorf("BofA app missing")
	}
	sess, err := bofa.NewLoginSession(st.Clock, screenOf(st.Profile))
	if err != nil {
		return nil, err
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		return nil, err
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		return nil, err
	}
	stealer, err := core.NewPasswordStealer(st, core.PasswordStealerConfig{
		App: attackerApp, Victim: sess, Keyboard: kb, D: d,
	})
	if err != nil {
		return nil, err
	}
	if err := stealer.Arm(); err != nil {
		return nil, err
	}
	typist, err := input.NewTypist(simrand.New(seed))
	if err != nil {
		return nil, err
	}
	st.Clock.MustAfter(500*time.Millisecond, "animsim/focus", func() {
		if err := sess.Activity.Focus(sess.Password); err != nil {
			panic(err)
		}
	})
	ks, err := typist.PlanSession(kb, password, time.Second)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		k := k
		st.Clock.MustAfter(k.DownAt, "user/down", func() {
			gid, _, ok := st.WM.BeginGesture(k.Point)
			if !ok {
				return
			}
			st.Clock.MustAfter(k.UpAt-k.DownAt, "user/up", func() {
				if _, err := st.WM.EndGesture(gid, k.Point); err != nil {
					panic(err)
				}
			})
		})
	}
	end := ks[len(ks)-1].UpAt + time.Second
	st.Clock.MustAfter(end, "animsim/stop", stealer.Stop)
	return func() {
		downs, ups, cancels := stealer.CaptureStats()
		fmt.Printf("victim typed:      %q (%d keystrokes incl. sub-keyboard switches)\n", password, len(ks))
		fmt.Printf("attacker derived:  %q\n", stealer.StolenPassword())
		fmt.Printf("victim widget:     %q (filled through the accessibility node)\n", sess.Password.Text())
		fmt.Printf("touches captured:  %d downs, %d ups, %d canceled\n", downs, ups, cancels)
		fmt.Printf("worst outcome:     %s\n", st.UI.WorstOutcome())
	}, nil
}
