package main

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/sysserver"
)

func newStack(t *testing.T) *sysserver.Stack {
	t.Helper()
	st, err := sysserver.Assemble(device.Default(), 1)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(attackerApp)
	return st
}

func TestRunOverlayScenario(t *testing.T) {
	st := newStack(t)
	report, err := runOverlay(st, 290*time.Millisecond, 2*time.Second)
	if err != nil {
		t.Fatalf("runOverlay: %v", err)
	}
	if err := st.Clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	report() // must not panic
	if got := st.UI.WorstOutcome().String(); got != "Λ1" {
		t.Fatalf("outcome = %s", got)
	}
}

func TestRunToastScenario(t *testing.T) {
	st := newStack(t)
	report, err := runToast(st, 5*time.Second)
	if err != nil {
		t.Fatalf("runToast: %v", err)
	}
	if err := st.Clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	report()
	if got := st.Server.Stats().ToastsShown; got == 0 {
		t.Fatal("no toasts shown")
	}
}

func TestRunStealScenario(t *testing.T) {
	st := newStack(t)
	report, err := runSteal(st, 290*time.Millisecond, "abc123", 5)
	if err != nil {
		t.Fatalf("runSteal: %v", err)
	}
	if err := st.Clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	report()
}
