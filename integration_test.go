// Integration soak: a multi-minute simulated attack session exercising
// the whole stack end-to-end, checking that state stays bounded and the
// system returns to quiescence.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

const soakAttacker binder.ProcessID = "com.evil.app"

// TestSoakFiveMinuteAttackSession runs a 5-minute simulated session: the
// user logs into the bank app three times; between logins the attacker's
// toast and overlay machinery keeps cycling. At the end, no windows leak,
// the alert history is bounded, and every alert stayed at Λ1.
func TestSoakFiveMinuteAttackSession(t *testing.T) {
	p, ok := device.ByModel("mi9") // Android 10: the widest-Tmis regime
	if !ok {
		t.Fatal("mi9 missing")
	}
	st, err := sysserver.Assemble(p, 97)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(soakAttacker)
	screen := geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screen)
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		t.Fatalf("ime.Show: %v", err)
	}
	typist, err := input.NewTypist(simrand.New(101))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}

	// Three login rounds at minutes 0.5, 2 and 3.5; a fresh stealer is
	// created and armed shortly before each login, as resident malware
	// re-arms per session. Arming lazily also keeps one stealer active
	// at a time — concurrently armed instances would race for the same
	// touches.
	stolen := make([]string, 0, 3)
	for round := 0; round < 3; round++ {
		base := 30*time.Second + time.Duration(round)*90*time.Second
		var stealer *core.PasswordStealer
		st.Clock.MustAfter(base-2*time.Second, "soak/arm", func() {
			var err error
			stealer, err = core.NewPasswordStealer(st, core.PasswordStealerConfig{
				App: soakAttacker, Victim: sess, Keyboard: kb,
			})
			if err != nil {
				panic(err)
			}
			if err := stealer.Arm(); err != nil {
				panic(err)
			}
		})
		st.Clock.MustAfter(base, "soak/focus", func() {
			sess.Password.SetText("")
			if err := sess.Activity.Focus(sess.Username); err != nil {
				panic(err)
			}
			if err := sess.Activity.Focus(sess.Password); err != nil {
				panic(err)
			}
		})
		ks, err := typist.PlanSession(kb, "s0ak&Run", base+time.Second)
		if err != nil {
			t.Fatalf("PlanSession: %v", err)
		}
		for _, k := range ks {
			k := k
			st.Clock.MustAfter(k.DownAt, "soak/down", func() {
				gid, _, ok := st.WM.BeginGesture(k.Point)
				if !ok {
					return
				}
				st.Clock.MustAfter(k.UpAt-k.DownAt, "soak/up", func() {
					if _, err := st.WM.EndGesture(gid, k.Point); err != nil {
						panic(err)
					}
				})
			})
		}
		end := ks[len(ks)-1].UpAt + 2*time.Second
		st.Clock.MustAfter(end, "soak/stop", func() {
			stolen = append(stolen, stealer.StolenPassword())
			stealer.Stop()
		})
	}
	if err := st.Clock.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}

	if len(stolen) != 3 {
		t.Fatalf("completed %d rounds, want 3", len(stolen))
	}
	exact := 0
	for _, s := range stolen {
		if s == "s0ak&Run" {
			exact++
		}
	}
	if exact < 2 {
		t.Fatalf("exact recoveries %d/3: %q", exact, stolen)
	}
	// Quiescence: only the IME window remains.
	if got := st.WM.WindowCount(); got != 1 {
		t.Fatalf("windows at quiescence = %d, want 1 (the IME)", got)
	}
	if st.WM.OverlayCount(soakAttacker) != 0 {
		t.Fatal("attacker overlays leaked")
	}
	// Stealth held across the whole session.
	if got := st.UI.WorstOutcome(); got != sysui.Lambda1 {
		t.Fatalf("WorstOutcome = %v, want Λ1", got)
	}
	// History stays bounded while the true episode count is large.
	if got := len(st.UI.Episodes()); got > 4096 {
		t.Fatalf("retained episodes = %d, exceeds cap", got)
	}
	if st.UI.EpisodesTotal() < 50 {
		t.Fatalf("EpisodesTotal = %d; the soak should generate many episodes", st.UI.EpisodesTotal())
	}
}
