// Quickstart: assemble a simulated Android device, run the
// draw-and-destroy overlay attack (Section III), and observe that the
// Android 8+ overlay alert never becomes visible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

func main() {
	// 1. Pick a phone from the paper's Table I/II and assemble the
	//    simulated stack: Binder bus, Window Manager, System Server and
	//    System UI, all on one deterministic event clock.
	phone := device.Default() // Google Pixel 2, Android 11
	stack, err := sysserver.Assemble(phone, 1)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	fmt.Printf("phone: %s (Table II upper bound of D: %v)\n", phone.Name(), phone.PaperUpperBoundD)

	// 2. The victim installed the malicious overlay app and granted
	//    SYSTEM_ALERT_WINDOW (the threat model of Section III-A).
	const evil binder.ProcessID = "com.evil.app"
	stack.WM.GrantOverlayPermission(evil)

	// 3. Launch the draw-and-destroy overlay attack with the attacking
	//    window D chosen just under the device's bound.
	d := time.Duration(float64(phone.PaperUpperBoundD) * 0.9)
	attack, err := core.NewOverlayAttack(stack, core.OverlayAttackConfig{
		App:    evil,
		D:      d,
		Bounds: geom.RectWH(0, 0, float64(phone.ScreenW), float64(phone.ScreenH)),
	})
	if err != nil {
		log.Fatalf("build attack: %v", err)
	}
	if err := attack.Start(); err != nil {
		log.Fatalf("start attack: %v", err)
	}

	// 4. Let the attack run for 10 virtual seconds, then stop it.
	stack.Clock.MustAfter(10*time.Second, "quickstart/stop", attack.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}

	// 5. The System UI classifies how much of the alert a user could
	//    have seen; Λ1 means nothing, ever — the alert was suppressed by
	//    exploiting its own slow-in animation.
	fmt.Printf("overlay swaps:  %d over 10 s (D = %v)\n", attack.Cycles(), d)
	fmt.Printf("alert episodes: %d, worst outcome: %s\n",
		len(stack.UI.Episodes()), stack.UI.WorstOutcome())
	if got := stack.UI.WorstOutcome().String(); got == "Λ1" {
		fmt.Println("result: the notification defense never showed anything — attack succeeded")
	} else {
		fmt.Println("result: the alert became visible — attack failed")
	}
}
