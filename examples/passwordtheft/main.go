// Passwordtheft: the full Section V attack against the Bank of America
// login screen — fake-keyboard toasts (draw-and-destroy toast attack) +
// transparent UI-intercepting overlays (draw-and-destroy overlay attack) +
// Euclidean nearest-key inference, triggered by accessibility events.
//
//	go run ./examples/passwordtheft
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/sysserver"
)

const evil binder.ProcessID = "com.evil.app"

func main() {
	phone, ok := device.ByModel("mi8") // Xiaomi Mi 8, Android 9
	if !ok {
		log.Fatal("device profile missing")
	}
	stack, err := sysserver.Assemble(phone, 7)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	stack.WM.GrantOverlayPermission(evil)
	screen := geom.RectWH(0, 0, float64(phone.ScreenW), float64(phone.ScreenH))

	// The victim opens the Bank of America login screen; the real
	// software keyboard appears over the bottom of the screen.
	bofa, ok := apps.ByName("Bank of America")
	if !ok {
		log.Fatal("BofA missing from Table IV catalog")
	}
	session, err := bofa.NewLoginSession(stack.Clock, screen)
	if err != nil {
		log.Fatalf("login session: %v", err)
	}
	kb, err := keyboard.New(session.KeyboardBounds)
	if err != nil {
		log.Fatalf("keyboard: %v", err)
	}
	if _, err := ime.Show(stack, kb, session.Activity); err != nil {
		log.Fatalf("ime: %v", err)
	}

	// The malicious app arms: its accessibility service waits for the
	// password widget to take focus.
	stealer, err := core.NewPasswordStealer(stack, core.PasswordStealerConfig{
		App:      evil,
		Victim:   session,
		Keyboard: kb,
		D:        time.Duration(float64(phone.PaperUpperBoundD) * 0.9),
	})
	if err != nil {
		log.Fatalf("stealer: %v", err)
	}
	if err := stealer.Arm(); err != nil {
		log.Fatalf("arm: %v", err)
	}

	// The user focuses the password field and types the demo password
	// from the paper's video — lower case, upper case, digits and
	// symbols across all three sub-keyboards.
	const password = "tk&%48GH"
	stack.Clock.MustAfter(500*time.Millisecond, "user/focus", func() {
		if err := session.Activity.Focus(session.Password); err != nil {
			panic(err)
		}
	})
	typist, err := input.NewTypist(simrand.New(99))
	if err != nil {
		log.Fatalf("typist: %v", err)
	}
	keystrokes, err := typist.PlanSession(kb, password, time.Second)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	for _, k := range keystrokes {
		k := k
		stack.Clock.MustAfter(k.DownAt, "user/down", func() {
			gid, target, ok := stack.WM.BeginGesture(k.Point)
			if ok {
				fmt.Printf("%8v  tap %-6q lands on %s window of %s\n",
					stack.Clock.Now().Round(time.Millisecond), k.Press.Key.Label, target.Type, target.Owner)
			}
			stack.Clock.MustAfter(k.UpAt-k.DownAt, "user/up", func() {
				if ok {
					if _, err := stack.WM.EndGesture(gid, k.Point); err != nil {
						panic(err)
					}
				}
			})
		})
	}
	end := keystrokes[len(keystrokes)-1].UpAt + time.Second
	stack.Clock.MustAfter(end, "attack/stop", stealer.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Println()
	fmt.Printf("victim typed:     %q\n", password)
	fmt.Printf("attacker derived: %q\n", stealer.StolenPassword())
	fmt.Printf("victim widget:    %q (filled via the captured accessibility node)\n", session.Password.Text())
	fmt.Printf("alert outcome:    %s (Λ1 = completely stealthy)\n", stack.UI.WorstOutcome())
}
