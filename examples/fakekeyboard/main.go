// Fakekeyboard: the draw-and-destroy toast attack (Section IV) holding a
// customized toast on screen indefinitely, contrasted with a naive toast
// loop that lets each toast expire before posting the next — the naive
// version flickers (the screen goes toast-free between posts), the attack
// does not, because it rides the 500 ms fade-out animation.
//
//	go run ./examples/fakekeyboard
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

const evil binder.ProcessID = "com.evil.app"

func main() {
	phone := device.Default()
	kbArea := geom.RectWH(0, 0.625*float64(phone.ScreenH), float64(phone.ScreenW), 0.375*float64(phone.ScreenH))
	const horizon = 20 * time.Second

	// Scenario A: the draw-and-destroy toast attack.
	stackA, err := sysserver.Assemble(phone, 1)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	attack, err := core.NewToastAttack(stackA, core.ToastAttackConfig{
		App:     evil,
		Bounds:  kbArea,
		Content: func() string { return "fake-keyboard:lower" },
	})
	if err != nil {
		log.Fatalf("toast attack: %v", err)
	}
	if err := attack.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	// observeRun's results materialize once the clock has run.
	minA := 1.0
	bareA := time.Duration(0)
	{
		last := time.Second
		var probe func()
		probe = func() {
			now := stackA.Clock.Now()
			if now > horizon {
				return
			}
			a := stackA.WM.TopToastAlpha(evil)
			if a < minA {
				minA = a
			}
			if a == 0 {
				bareA += now - last
			}
			last = now
			stackA.Clock.MustAfter(10*time.Millisecond, "observe", probe)
		}
		stackA.Clock.MustAfter(time.Second, "observe", probe)
	}
	stackA.Clock.MustAfter(horizon, "stop", attack.Stop)
	if err := stackA.Clock.Run(); err != nil {
		log.Fatalf("run A: %v", err)
	}

	// Scenario B: a naive loop that posts a toast only after the
	// previous one fully disappeared (what Android's serialization was
	// meant to force).
	stackB, err := sysserver.Assemble(phone, 2)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	var post func()
	post = func() {
		if stackB.Clock.Now() > horizon {
			return
		}
		if _, err := stackB.Bus.Call(evil, binder.SystemServer, sysserver.MethodEnqueueToast, sysserver.EnqueueToastRequest{
			Duration: sysserver.ToastLong,
			Bounds:   kbArea,
			Content:  "fake-keyboard:lower",
		}); err != nil {
			panic(err)
		}
		// Next toast after this one's duration + fade + a think pause.
		stackB.Clock.MustAfter(sysserver.ToastLong+time.Second, "naive/post", post)
	}
	post()
	minB := 1.0
	bareB := time.Duration(0)
	{
		last := time.Second
		var probe func()
		probe = func() {
			now := stackB.Clock.Now()
			if now > horizon {
				return
			}
			a := stackB.WM.TopToastAlpha(evil)
			if a < minB {
				minB = a
			}
			if a == 0 {
				bareB += now - last
			}
			last = now
			stackB.Clock.MustAfter(10*time.Millisecond, "observe", probe)
		}
		stackB.Clock.MustAfter(time.Second, "observe", probe)
	}
	if err := stackB.Clock.Run(); err != nil {
		log.Fatalf("run B: %v", err)
	}

	fmt.Printf("over %v on %s:\n\n", horizon, phone.Name())
	fmt.Printf("draw-and-destroy toast attack (%d toasts):\n", attack.Enqueued())
	fmt.Printf("  min combined opacity: %.2f\n", minA)
	fmt.Printf("  time with no toast:   %v\n\n", bareA.Round(time.Millisecond))
	fmt.Println("naive toast loop (waits for expiry):")
	fmt.Printf("  min combined opacity: %.2f\n", minB)
	fmt.Printf("  time with no toast:   %v   <- the flicker Android's defense forces\n", bareB.Round(time.Millisecond))
}
