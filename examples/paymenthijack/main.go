// Paymenthijack: the paper's third named application of the
// draw-and-destroy building blocks. A payment app shows "Pay ¥1000 to
// shop-B"; the malicious app covers the amount line with a content-hiding
// toast reading "Pay ¥1 to shop-A" while a clickjacking (non-touchable)
// overlay dresses up the confirm button. The user believes they confirm a
// ¥1 payment; their touch passes through to the real ¥1000 confirm button.
//
//	go run ./examples/paymenthijack
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
	"repro/internal/wm"
)

const (
	evil   binder.ProcessID = "com.evil.app"
	payApp binder.ProcessID = "com.pay.app"
)

func main() {
	phone := device.Default()
	stack, err := sysserver.Assemble(phone, 11)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	stack.WM.GrantOverlayPermission(evil)
	screen := geom.RectWH(0, 0, float64(phone.ScreenW), float64(phone.ScreenH))

	// The victim payment screen: an amount line and a confirm button.
	amountLine := geom.RectWH(0.1*screen.W(), 0.35*screen.H(), 0.8*screen.W(), 0.08*screen.H())
	confirmBtn := geom.RectWH(0.25*screen.W(), 0.6*screen.H(), 0.5*screen.W(), 0.08*screen.H())
	confirmed := false
	if _, err := stack.WM.AddWindow(wm.Spec{
		Owner: payApp, Type: wm.TypeActivity, Bounds: screen,
		OnTouch: func(ev wm.TouchEvent) {
			if ev.Action == wm.ActionUp && confirmBtn.Contains(ev.Pos) {
				confirmed = true
			}
		},
	}); err != nil {
		log.Fatalf("payment app: %v", err)
	}

	// Attack block 1: hide the real amount under a fake one (toast — no
	// permission needed, no alert possible).
	hide, err := core.NewContentHideAttack(stack, core.ContentHideConfig{
		App:         evil,
		Region:      amountLine,
		FakeContent: "Pay ¥1 to shop-A",
	})
	if err != nil {
		log.Fatalf("content hide: %v", err)
	}
	// Attack block 2: a non-touchable lure over the confirm button (the
	// alert it would trigger is suppressed by the draw-and-destroy
	// loop).
	lure, err := core.NewClickjackAttack(stack, core.ClickjackConfig{
		App:    evil,
		D:      time.Duration(float64(phone.PaperUpperBoundD) * 0.9),
		Bounds: confirmBtn,
		Lure:   "Confirm ¥1",
	})
	if err != nil {
		log.Fatalf("clickjack: %v", err)
	}
	if err := hide.Start(); err != nil {
		log.Fatalf("start hide: %v", err)
	}
	if err := lure.Start(); err != nil {
		log.Fatalf("start lure: %v", err)
	}

	// Three seconds in, the user reads "Pay ¥1" and taps confirm.
	stack.Clock.MustAfter(3*time.Second, "user/confirm", func() {
		p := confirmBtn.Center()
		gid, target, ok := stack.WM.BeginGesture(p)
		if !ok {
			log.Fatal("tap hit nothing")
		}
		fmt.Printf("user taps %q — the touch lands on the %s window of %s\n",
			lure.Lure(), target.Type, target.Owner)
		stack.Clock.MustAfter(60*time.Millisecond, "user/up", func() {
			if _, err := stack.WM.EndGesture(gid, p); err != nil {
				log.Fatalf("end gesture: %v", err)
			}
		})
	})
	stack.Clock.MustAfter(6*time.Second, "attack/stop", func() {
		hide.Stop()
		lure.Stop()
	})
	if err := stack.Clock.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Println()
	fmt.Printf("amount line shown to user: %q (real screen says \"Pay ¥1000 to shop-B\")\n", "Pay ¥1 to shop-A")
	fmt.Printf("payment confirmed:         %v (the real ¥1000 payment went through)\n", confirmed)
	fmt.Printf("overlay alert outcome:     %s across %d suppressed episodes\n",
		stack.UI.WorstOutcome(), len(stack.UI.Episodes()))
	fmt.Println("                           (the content-hiding toast itself never triggers any alert)")
}
