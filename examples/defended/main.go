// Defended: the same draw-and-destroy overlay attack run three times —
// against a stock device, against a device with the Section VII-B
// enhanced-notification patch (t = 690 ms), and against a device with the
// Section VII-A IPC detector armed to revoke SYSTEM_ALERT_WINDOW on
// detection.
//
//	go run ./examples/defended
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

const evil binder.ProcessID = "com.evil.app"

type verdict struct {
	name     string
	outcome  string
	detected string
	note     string
}

func main() {
	phone := device.Default() // Pixel 2, the paper's defense testbed
	d := time.Duration(float64(phone.PaperUpperBoundD) * 0.9)
	var results []verdict

	// Run 1: stock device.
	{
		stack := mustAssemble(phone, 1)
		runAttack(stack, d)
		results = append(results, verdict{
			name:     "stock Android",
			outcome:  stack.UI.WorstOutcome().String(),
			detected: "n/a",
			note:     "attack suppresses the alert",
		})
	}

	// Run 2: enhanced-notification defense (Section VII-B).
	{
		stack := mustAssemble(phone, 2)
		stack.Server.EnableEnhancedNotificationDefense(690 * time.Millisecond)
		runAttack(stack, d)
		results = append(results, verdict{
			name:     "enhanced notification (t=690ms)",
			outcome:  stack.UI.WorstOutcome().String(),
			detected: "n/a",
			note:     "alert removal is delayed past the animation, so it always completes",
		})
	}

	// Run 3: IPC-based detector (Section VII-A), terminate on detection.
	{
		stack := mustAssemble(phone, 3)
		det, err := defense.NewIPCDetector(defense.IPCDetectorConfig{})
		if err != nil {
			log.Fatalf("detector: %v", err)
		}
		if err := det.Install(stack, true); err != nil {
			log.Fatalf("install: %v", err)
		}
		runAttack(stack, d)
		detected := "no"
		if ds := det.Detections(); len(ds) > 0 {
			detected = fmt.Sprintf("yes, at %v (%d swaps, mean gap %v)",
				ds[0].At.Round(time.Millisecond), ds[0].Swaps, ds[0].MeanSwapGap.Round(100*time.Microsecond))
		}
		results = append(results, verdict{
			name:     "IPC (Binder) detector",
			outcome:  stack.UI.WorstOutcome().String(),
			detected: detected,
			note:     "SYSTEM_ALERT_WINDOW revoked; overlays removed",
		})
	}

	fmt.Printf("draw-and-destroy overlay attack on %s, D = %v, 15 s\n\n", phone.Name(), d)
	for _, r := range results {
		fmt.Printf("%-34s alert outcome: %-3s  detected: %s\n", r.name, r.outcome, r.detected)
		fmt.Printf("%-34s %s\n\n", "", r.note)
	}
}

func mustAssemble(p device.Profile, seed int64) *sysserver.Stack {
	stack, err := sysserver.Assemble(p, seed)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}
	stack.WM.GrantOverlayPermission(evil)
	return stack
}

func runAttack(stack *sysserver.Stack, d time.Duration) {
	atk, err := core.NewOverlayAttack(stack, core.OverlayAttackConfig{
		App: evil, D: d,
		Bounds: geom.RectWH(0, 0, float64(stack.Profile.ScreenW), float64(stack.Profile.ScreenH)),
	})
	if err != nil {
		log.Fatalf("attack: %v", err)
	}
	if err := atk.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	stack.Clock.MustAfter(15*time.Second, "stop", atk.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}
}
